//! A plain (unconditional) VAE fitted on the data distribution — the
//! generative substrate REVISE and C-CHVAE search in.
//!
//! Unlike the paper's own model, these baselines were run through the
//! CARLA library [20], whose VAE is *not* the Table II architecture but a
//! wider autoencoder sized to the data. We mirror that:
//! `in → 128 → 32 → latent(10)` (or `in → 256 → 64 → latent(24)` for wide
//! ≥ 100-column inputs) with a symmetric decoder, trained on the
//! Bernoulli ELBO (BCE-with-logits reconstruction + KL) — BCE because the
//! encoded features are all in `[0, 1]` and an L1 likelihood over-smooths
//! the one-hot blocks.

use cfx_tensor::checkpoint::{crash_point, Checkpoint, CheckpointConfig};
use cfx_tensor::init::randn_tensor;
use cfx_tensor::{
    stable_sigmoid, Activation, Adam, CfxError, Linear, Mlp, Module,
    Optimizer, Tape, Tensor, Var,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A data-distribution VAE with a CARLA-style architecture.
#[derive(Debug, Clone)]
pub struct PlainVae {
    encoder: Mlp,
    mu_head: Linear,
    logvar_head: Linear,
    decoder: Mlp,
    latent_dim: usize,
}

/// ELBO training settings for [`PlainVae::fit`].
#[derive(Debug, Clone, Copy)]
pub struct PlainVaeConfig {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Epochs over the training rows.
    pub epochs: usize,
    /// KL weight (β).
    pub kl_weight: f32,
    /// Latent dimensionality; `0` picks it from the data width at fit
    /// time (10, or 24 for wide ≥ 100-column inputs).
    pub latent_dim: usize,
    /// First hidden width (second is `hidden / 4`); `0` picks it from the
    /// data width at fit time (128, or 256 for wide inputs).
    pub hidden: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlainVaeConfig {
    fn default() -> Self {
        PlainVaeConfig {
            learning_rate: 3e-3,
            batch_size: 128,
            epochs: 25,
            kl_weight: 0.05,
            latent_dim: 0,
            hidden: 0,
            seed: 0,
        }
    }
}

impl PlainVaeConfig {
    /// Resolves the `(hidden, latent)` architecture for `width` input
    /// columns. A fixed 128 → 32 → 10 bottleneck reconstructs the ~30-wide
    /// Adult/Law encodings fine but pulls Table II-width KDD data (200+
    /// one-hot columns) toward the majority class; wide inputs get the
    /// larger 256 → 64 → 24 stack instead.
    pub fn architecture_for(&self, width: usize) -> (usize, usize) {
        let wide = width >= 100;
        let hidden = match self.hidden {
            0 if wide => 256,
            0 => 128,
            h => h,
        };
        let latent = match self.latent_dim {
            0 if wide => 24,
            0 => 10,
            l => l,
        };
        (hidden, latent)
    }
}

impl PlainVae {
    /// Fits the VAE on `x` and returns it with the per-epoch ELBO losses.
    pub fn fit(x: &Tensor, config: &PlainVaeConfig) -> (PlainVae, Vec<f32>) {
        Self::fit_with_checkpoints(x, config, &CheckpointConfig::disabled())
            .expect("disabled checkpointing cannot fail")
    }

    /// [`fit`](Self::fit) with durable state: parameters, Adam moments +
    /// step count, RNG stream, and the loss history are checkpointed
    /// together every `ckpt.every_epochs` epochs, and with `ckpt.resume`
    /// the fit continues bitwise-identically from the newest intact
    /// checkpoint (the architecture is a pure function of the config and
    /// data width, so the model is rebuilt then overwritten).
    pub fn fit_with_checkpoints(
        x: &Tensor,
        config: &PlainVaeConfig,
        ckpt: &CheckpointConfig,
    ) -> Result<(PlainVae, Vec<f32>), CfxError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let input = x.cols();
        let (hidden, latent_dim) = config.architecture_for(input);
        let h1 = hidden;
        let h2 = (hidden / 4).max(latent_dim);
        let encoder = Mlp::new(
            &[input, h1, h2],
            Activation::Relu,
            Activation::Relu,
            1.0,
            &mut rng,
        );
        let mu_head =
            Linear::new(h2, latent_dim, Activation::Identity, &mut rng);
        let logvar_head =
            Linear::new(h2, latent_dim, Activation::Identity, &mut rng);
        let decoder = Mlp::new(
            &[latent_dim, h2, h1, input],
            Activation::Relu,
            Activation::Identity, // logits; sigmoid applied at decode
            1.0,
            &mut rng,
        );
        let mut vae = PlainVae {
            encoder,
            mu_head,
            logvar_head,
            decoder,
            latent_dim,
        };

        let mut opt = Adam::with_lr(config.learning_rate);
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut losses = Vec::with_capacity(config.epochs);
        let mut epoch = 0usize;

        let mut manager = ckpt.manager()?;
        if let Some(mgr) = manager.as_mut() {
            if ckpt.resume {
                if let Some((_, c)) = mgr.load_latest()? {
                    vae.try_import_params(&c.tensors("vae")?)?;
                    opt = Adam::from_state(c.adam("adam")?);
                    let rs = c.u64s("rng")?;
                    let rs: [u64; 4] =
                        rs.as_slice().try_into().map_err(|_| {
                            CfxError::corrupt("rng section malformed")
                        })?;
                    rng = StdRng::from_state(rs);
                    let meta = c.u64s("meta.u64")?;
                    epoch = *meta.first().ok_or_else(|| {
                        CfxError::corrupt("meta.u64 section empty")
                    })? as usize;
                    losses = c.f32s("losses")?;
                }
            }
        }
        let every = ckpt.every_epochs.max(1);

        // One tape for the whole fit; reset() recycles every buffer so
        // steady-state ELBO steps run out of the pool.
        let mut tape = Tape::new();
        let mut pv = Vec::new();
        while epoch < config.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(config.batch_size) {
                let xb = x.gather_rows_pooled(chunk);
                let b = xb.rows();
                let eps = randn_tensor(b, latent_dim, &mut rng);
                tape.reset();
                pv.clear();
                let xv = tape.leaf(xb);
                let (mu, logvar, recon_logits) =
                    vae.forward(&mut tape, xv, &eps, &mut pv, &mut rng);
                // Per-row-sum BCE (fused sigmoid+BCE against the input
                // node) so the KL term (also a per-row sum over latent
                // dims) cannot dominate and collapse the posterior.
                let width = tape.value(xv).cols() as f32;
                let bce = tape.sigmoid_bce_node(recon_logits, xv);
                let rec = tape.scale(bce, width);
                let kl = tape.kl_gauss(mu, logvar);
                let klw = tape.scale(kl, config.kl_weight);
                let loss = tape.add(rec, klw);
                total += tape.value(loss).item();
                batches += 1;
                tape.backward(loss);
                tape.clip_grads(&pv, 5.0);
                let grads = tape.grads_of(&pv);
                opt.step_refs(&mut vae, &grads);
            }
            let mean = total / batches.max(1) as f32;
            losses.push(mean);
            epoch += 1;
            if let Some(mgr) = manager.as_mut() {
                if epoch % every == 0 || epoch == config.epochs {
                    let mut c = Checkpoint::new();
                    c.put_str("model", "PlainVae.fit");
                    c.put_tensors("vae", &vae.export_params());
                    c.put_adam("adam", &opt.export_state());
                    c.put_u64s("rng", &rng.state());
                    c.put_u64s("meta.u64", &[epoch as u64]);
                    c.put_f32s("losses", &losses);
                    mgr.save(epoch as u64, mean, &mut c)?;
                    crash_point("vae-epoch", epoch as u64);
                }
            }
        }
        Ok((vae, losses))
    }

    fn forward(
        &self,
        tape: &mut Tape,
        x: Var,
        eps: &Tensor,
        pv: &mut Vec<Var>,
        rng: &mut StdRng,
    ) -> (Var, Var, Var) {
        let trunk = self.encoder.forward(tape, x, pv, false, rng);
        let mu = self.mu_head.forward(tape, trunk, pv);
        let logvar_raw = self.logvar_head.forward(tape, trunk, pv);
        let logvar = {
            let t = tape.scale(logvar_raw, 1.0 / 6.0);
            let t = tape.tanh(t);
            tape.scale(t, 6.0)
        };
        let z = tape.reparameterize(mu, logvar, eps);
        let recon = self.decoder.forward(tape, z, pv, false, rng);
        (mu, logvar, recon)
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Posterior mean of `x`.
    pub fn encode(&self, x: &Tensor) -> Tensor {
        let trunk = self.encoder.predict(x);
        let mut z = trunk.matmul(&self.mu_head.w);
        trunk.recycle();
        for r in 0..z.rows() {
            for (v, &b) in
                z.row_slice_mut(r).iter_mut().zip(self.mu_head.b.as_slice())
            {
                *v += b;
            }
        }
        z
    }

    /// Decode latent codes to data space (sigmoid of the decoder logits).
    pub fn decode(&self, z: &Tensor) -> Tensor {
        let mut out = self.decoder.predict(z);
        out.map_inplace(stable_sigmoid);
        out
    }

    /// Decode latent rows inside a tape (for latent-gradient search),
    /// returning the `[0, 1]` reconstruction var.
    pub fn decode_tape(&self, tape: &mut Tape, z: Var) -> Var {
        let mut pv = Vec::new();
        let mut rng = StdRng::seed_from_u64(0); // unused: no dropout
        let logits = self.decoder.forward(tape, z, &mut pv, false, &mut rng);
        tape.sigmoid(logits)
    }
}

impl Module for PlainVae {
    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        self.encoder.visit_params(f);
        self.mu_head.visit_params(f);
        self.logvar_head.visit_params(f);
        self.decoder.visit_params(f);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.encoder.visit_params_mut(f);
        self.mu_head.visit_params_mut(f);
        self.logvar_head.visit_params_mut(f);
        self.decoder.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_data::{DatasetId, EncodedDataset};

    #[test]
    fn elbo_drops_during_training() {
        let raw = DatasetId::LawSchool.generate_clean(800, 1);
        let data = EncodedDataset::from_raw(&raw);
        let cfg = PlainVaeConfig { epochs: 8, ..Default::default() };
        let (_, losses) = PlainVae::fit(&data.x, &cfg);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
    }

    #[test]
    fn decode_tape_matches_decode() {
        let raw = DatasetId::LawSchool.generate_clean(400, 2);
        let data = EncodedDataset::from_raw(&raw);
        let cfg = PlainVaeConfig { epochs: 3, ..Default::default() };
        let (vae, _) = PlainVae::fit(&data.x, &cfg);
        let z = vae.encode(&data.x.slice_rows(0, 3));
        let direct = vae.decode(&z);
        let mut tape = Tape::new();
        let zv = tape.leaf(z);
        let out = vae.decode_tape(&mut tape, zv);
        for (a, b) in tape.value(out).as_slice().iter().zip(direct.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn reconstructions_resemble_inputs() {
        let raw = DatasetId::LawSchool.generate_clean(1000, 3);
        let data = EncodedDataset::from_raw(&raw);
        let cfg = PlainVaeConfig { epochs: 40, ..Default::default() };
        let (vae, _) = PlainVae::fit(&data.x, &cfg);
        let x = data.x.slice_rows(0, 50);
        let rec = vae.decode(&vae.encode(&x));
        let err = x
            .as_slice()
            .iter()
            .zip(rec.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / x.len() as f32;
        // Mean absolute reconstruction error well below the data scale.
        assert!(err < 0.15, "reconstruction error {err}");
    }

    #[test]
    fn class_regions_survive_the_bottleneck_on_wide_data() {
        // The motivating regression: on wide KDD-like data the old Table
        // II-width VAE mapped every decode into the majority class.
        use cfx_models::{BlackBox, BlackBoxConfig};
        let raw = DatasetId::KddCensus.generate_clean(2_000, 5);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 10, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        // Width-aware architecture (256 → 64 → 24 at this width) with a
        // soft KL so reconstruction, not the prior, wins on 200+ columns.
        let (vae, _) = PlainVae::fit(
            &data.x,
            &PlainVaeConfig {
                epochs: 80,
                kl_weight: 0.005,
                ..Default::default()
            },
        );
        // Reconstructions of positive-predicted rows must often stay
        // positive.
        let preds = bb.predict(&data.x);
        let pos: Vec<usize> = (0..data.len())
            .filter(|&r| preds[r] == 1)
            .take(50)
            .collect();
        if pos.len() < 10 {
            return; // not enough positives in this draw
        }
        let xp = data.x.gather_rows(&pos);
        let rec = vae.decode(&vae.encode(&xp));
        let kept = bb
            .predict(&rec)
            .iter()
            .filter(|&&p| p == 1)
            .count();
        assert!(
            kept * 2 >= pos.len(),
            "only {kept}/{} positive reconstructions stayed positive",
            pos.len()
        );
    }
}
