//! # cfx-baselines
//!
//! From-scratch Rust implementations of the six comparison methods in the
//! paper's Table IV, all behind the [`CfMethod`] trait:
//!
//! | Method | Core idea |
//! |---|---|
//! | [`Mahajan`](mahajan::Mahajan) | CVAE + causal-constraint hinge (no sparsity term) |
//! | [`Revise`](revise::Revise) | gradient descent in a data-VAE's latent space |
//! | [`Cchvae`](cchvae::Cchvae) | growing-spheres search in a data-VAE's latent space |
//! | [`Cem`](cem::Cem) | FISTA elastic-net pertinent negatives on the input |
//! | [`DiceRandom`](dice::DiceRandom) | random feature re-draws + greedy sparsification |
//! | [`Face`](face::Face) | density-weighted shortest path to a real instance |
//!
//! The paper reproduced REVISE/C-CHVAE/CEM/FACE from the CARLA library
//! [20] and DiCE from its own library [11]; here each algorithm is
//! implemented from its original description so the comparison measures
//! algorithms, not Python wrappers (see DESIGN.md, Substitutions).

#![warn(missing_docs)]

pub mod cchvae;
pub mod cem;
pub mod dice;
pub mod face;
pub mod mahajan;
pub mod method;
pub mod revise;
pub mod vae_util;

pub use cchvae::{Cchvae, CchvaeConfig};
pub use cem::{Cem, CemConfig};
pub use dice::{DiceConfig, DiceRandom};
pub use face::{Face, FaceConfig};
pub use mahajan::Mahajan;
pub use method::{BaselineContext, CfMethod};
pub use revise::{Revise, ReviseConfig};
pub use vae_util::{PlainVae, PlainVaeConfig};

use rand::Rng;

/// One standard-normal draw (Box–Muller), shared by the stochastic search
/// baselines.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Fits every baseline of Table IV (except the paper's own model, which
/// lives in `cfx-core`) and returns them in the paper's row order.
pub fn fit_all_baselines(
    ctx: &BaselineContext<'_>,
    dataset: cfx_data::DatasetId,
) -> Vec<Box<dyn CfMethod>> {
    vec![
        Box::new(Mahajan::fit(ctx, dataset, cfx_core::ConstraintMode::Unary)),
        Box::new(Mahajan::fit(ctx, dataset, cfx_core::ConstraintMode::Binary)),
        Box::new(Revise::fit(ctx, ReviseConfig::default())),
        Box::new(Cchvae::fit(ctx, CchvaeConfig::default())),
        Box::new(Cem::fit(ctx, CemConfig::default())),
        Box::new(DiceRandom::fit(ctx, DiceConfig::default())),
        Box::new(Face::fit(ctx, FaceConfig::default())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_data::{DatasetId, EncodedDataset};
    use cfx_models::{BlackBox, BlackBoxConfig};

    #[test]
    fn registry_produces_the_paper_rows() {
        let raw = DatasetId::LawSchool.generate_clean(400, 2);
        let data = EncodedDataset::from_raw(&raw);
        let cfg = BlackBoxConfig { epochs: 4, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &cfg);
        bb.train(&data.x, &data.y, &cfg);
        let ctx = BaselineContext::new(&data, data.x.slice_rows(0, 300), &bb, 0);
        let methods = fit_all_baselines(&ctx, DatasetId::LawSchool);
        let names: Vec<String> = methods.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "Mahajan et al. [5] Unary",
                "Mahajan et al. [5] Binary",
                "REVISE [12]",
                "C-CHVAE [13]",
                "CEM [10]",
                "DiCE random [11]",
                "FACE [19]",
            ]
        );
        // Smoke: every method produces finite outputs of the right shape.
        let x = data.x.slice_rows(0, 5);
        for m in &methods {
            let cf = m.counterfactuals(&x);
            assert_eq!(cf.shape(), x.shape(), "{}", m.name());
            assert!(cf.all_finite(), "{}", m.name());
        }
    }
}
