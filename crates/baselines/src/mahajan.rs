//! Mahajan et al., 2019 [5]: "Preserving causal constraints in
//! counterfactual explanations for machine learning classifiers".
//!
//! The closest prior method and the paper's main head-to-head comparison:
//! a conditional VAE trained with validity + reconstruction + a hinge
//! penalty on the causal constraints — i.e. the same skeleton as the
//! paper's model but **without the sparsity term** and with a stronger
//! ELBO pull (their objective stays closer to the generative model). We
//! realize it on the shared `FeasibleCfModel` machinery with exactly those
//! weight differences, so the Table IV comparison isolates the paper's
//! added ingredients (sparsity, weight balance) rather than implementation
//! noise.

use crate::method::{BaselineContext, CfMethod};
use cfx_core::{
    CfLossWeights, ConstraintMode, FeasibleCfConfig, FeasibleCfModel,
};
use cfx_data::DatasetId;
use cfx_tensor::Tensor;

/// A fitted Mahajan et al. CVAE baseline.
pub struct Mahajan {
    model: FeasibleCfModel,
    mode: ConstraintMode,
}

impl Mahajan {
    /// Loss weights distinguishing Mahajan et al. from the paper's model:
    /// no sparsity, heavier proximity (their reconstruction term), larger
    /// KL.
    pub fn weights() -> CfLossWeights {
        CfLossWeights {
            validity: 4.0,
            proximity: 2.0,
            feasibility: 8.0,
            sparsity: 0.0,
            kl: 0.2,
            hinge_margin: 0.5,
            sparsity_eps: 1e-3,
            recon_bce: 1.0,
        }
    }

    /// Trains the baseline for a dataset/mode pair.
    pub fn fit(
        ctx: &BaselineContext<'_>,
        dataset: DatasetId,
        mode: ConstraintMode,
    ) -> Self {
        let mut config = FeasibleCfConfig::paper(dataset, mode)
            .with_step_budget_of(dataset, ctx.train_x.rows());
        config.weights = Self::weights();
        config.seed = ctx.seed ^ 0x0005;
        let constraints = FeasibleCfModel::paper_constraints(
            dataset, ctx.data, mode, config.c1, config.c2,
        ).unwrap();
        let mut model = FeasibleCfModel::new(
            ctx.data,
            ctx.blackbox.clone(),
            constraints,
            config,
        );
        model.fit(&ctx.train_x);
        Mahajan { model, mode }
    }

    /// Access to the underlying model (for feasibility checks).
    pub fn model(&self) -> &FeasibleCfModel {
        &self.model
    }
}

impl CfMethod for Mahajan {
    fn name(&self) -> String {
        match self.mode {
            ConstraintMode::Unary => "Mahajan et al. [5] Unary".into(),
            ConstraintMode::Binary => "Mahajan et al. [5] Binary".into(),
        }
    }

    fn counterfactuals(&self, x: &Tensor) -> Tensor {
        self.model.counterfactuals(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_data::EncodedDataset;
    use cfx_models::{BlackBox, BlackBoxConfig};

    #[test]
    fn mahajan_trains_and_respects_immutables() {
        let raw = DatasetId::Adult.generate_clean(900, 5);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 8, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        let ctx = BaselineContext::new(&data, data.x.slice_rows(0, 600), &bb, 0);

        // Shrink epochs through the context seed path is not possible;
        // fit with the paper config (25 epochs on 600 rows is fast).
        let mahajan = Mahajan::fit(&ctx, DatasetId::Adult, ConstraintMode::Unary);
        assert_eq!(mahajan.name(), "Mahajan et al. [5] Unary");

        let x = data.x.slice_rows(0, 15);
        let cf = mahajan.counterfactuals(&x);
        assert_eq!(cf.shape(), x.shape());
        for &c in &data.encoding.immutable_columns(&data.schema) {
            for r in 0..x.rows() {
                assert_eq!(x[(r, c)], cf[(r, c)]);
            }
        }
    }

    #[test]
    fn weights_have_no_sparsity_term() {
        let w = Mahajan::weights();
        assert_eq!(w.sparsity, 0.0);
        assert!(w.kl > CfLossWeights::default().kl);
    }
}
