//! CEM — Contrastive Explanations Method, pertinent negatives
//! (Dhurandhar et al., 2018 [10]).
//!
//! Finds a minimal, sparse perturbation δ such that `x + δ` is classified
//! as the desired class, by FISTA-style proximal gradient descent on
//!
//! ```text
//! L(δ) = c · hinge(h(x + δ), y') + β‖δ‖₁ + ‖δ‖₂²
//! ```
//!
//! where the L1 term is handled exactly by soft-thresholding (the proximal
//! operator), which is what produces CEM's signature ultra-sparse — but
//! often constraint-violating — counterfactuals (Table IV: lowest
//! sparsity, weakest validity/feasibility).

use crate::method::{BaselineContext, CfMethod};
use cfx_models::BlackBox;
use cfx_tensor::{Tape, Tensor};

/// CEM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct CemConfig {
    /// c — weight on the classification hinge.
    pub attack_weight: f32,
    /// β — L1 shrinkage strength.
    pub beta: f32,
    /// Hinge confidence margin κ.
    pub kappa: f32,
    /// Gradient steps.
    pub max_iters: usize,
    /// Step size.
    pub step_size: f32,
}

impl Default for CemConfig {
    fn default() -> Self {
        CemConfig {
            attack_weight: 4.0,
            beta: 0.1,
            kappa: 0.3,
            max_iters: 200,
            step_size: 0.05,
        }
    }
}

/// A fitted CEM explainer (stateless apart from the frozen classifier).
pub struct Cem {
    blackbox: BlackBox,
    config: CemConfig,
}

impl Cem {
    /// Captures the frozen classifier.
    pub fn fit(ctx: &BaselineContext<'_>, config: CemConfig) -> Self {
        Cem { blackbox: ctx.blackbox.clone(), config }
    }

    fn explain_one(&self, x: &Tensor, desired: u8) -> Tensor {
        let cfg = &self.config;
        let sign = if desired == 1 { 1.0f32 } else { -1.0 };
        let label = Tensor::from_vec(1, 1, vec![sign]);
        let mut delta = Tensor::zeros(1, x.cols());
        let mut momentum = Tensor::zeros(1, x.cols());
        let mut best: Option<(f32, Tensor)> = None;

        // One tape across the whole FISTA loop: reset() recycles every
        // iteration's buffers, so the search runs out of the pool.
        let mut tape = Tape::new();
        for iter in 0..cfg.max_iters {
            // y = x + delta (clipped into the unit box).
            let xcf = x.zip(&delta, |a, d| (a + d).clamp(0.0, 1.0));
            tape.reset();
            let xv = tape.leaf_copy(&xcf);
            let logits = self.blackbox.forward_tape(&mut tape, xv);
            let hinge = tape.hinge(logits, &label, cfg.kappa);
            let attack = tape.scale(hinge, cfg.attack_weight);
            tape.backward(attack);
            let g_attack = tape.grad(xv);

            // Track the sparsest successful perturbation so far.
            let logit = tape.value(logits).item();
            if (logit >= 0.0) as u8 == desired {
                let l1: f32 = delta.as_slice().iter().map(|d| d.abs()).sum();
                if best.as_ref().map(|(b, _)| l1 < *b).unwrap_or(true) {
                    best = Some((l1, xcf.clone()));
                }
            }

            // Gradient step on hinge + 2·δ (the L2 term), Nesterov-ish
            // momentum, then the exact L1 proximal (soft-threshold).
            let lr = cfg.step_size / (1.0 + iter as f32 / 50.0).sqrt();
            for ((d, m), &g) in delta
                .as_mut_slice()
                .iter_mut()
                .zip(momentum.as_mut_slice())
                .zip(g_attack.as_slice())
            {
                let grad = g + 2.0 * *d;
                *m = 0.7 * *m + grad;
                *d -= lr * *m;
                // prox_{lr·β·‖·‖₁}
                let thr = lr * cfg.beta;
                *d = if *d > thr {
                    *d - thr
                } else if *d < -thr {
                    *d + thr
                } else {
                    0.0
                };
            }
        }
        let cf = match best {
            Some((_, cf)) => cf,
            None => return x.zip(&delta, |a, d| (a + d).clamp(0.0, 1.0)),
        };
        self.prune(x, cf, desired)
    }

    /// Final cleanup: zero perturbation coordinates from smallest to
    /// largest magnitude while the counterfactual stays valid — the
    /// discrete analogue of the L1 proximal step, guaranteeing no
    /// sub-threshold residue inflates the sparsity metric.
    fn prune(&self, x: &Tensor, mut cf: Tensor, desired: u8) -> Tensor {
        let mut order: Vec<usize> = (0..x.cols()).collect();
        order.sort_by(|&a, &b| {
            let da = (cf[(0, a)] - x[(0, a)]).abs();
            let db = (cf[(0, b)] - x[(0, b)]).abs();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        for c in order {
            if cf[(0, c)] == x[(0, c)] {
                continue;
            }
            let saved = cf[(0, c)];
            cf[(0, c)] = x[(0, c)];
            if self.blackbox.predict(&cf)[0] != desired {
                cf[(0, c)] = saved;
            }
        }
        cf
    }
}

impl CfMethod for Cem {
    fn name(&self) -> String {
        "CEM [10]".into()
    }

    fn counterfactuals(&self, x: &Tensor) -> Tensor {
        let desired = self.blackbox.predict(x);
        let mut rows = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let xr = x.slice_rows(r, 1);
            let cf = self.explain_one(&xr, 1 - desired[r]);
            rows.push(cf.as_slice().to_vec());
        }
        Tensor::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_data::{DatasetId, EncodedDataset};
    use cfx_models::BlackBoxConfig;

    fn setup() -> (EncodedDataset, BlackBox) {
        let raw = DatasetId::Adult.generate_clean(1200, 23);
        let data = EncodedDataset::from_raw(&raw);
        let cfg = BlackBoxConfig { epochs: 12, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &cfg);
        bb.train(&data.x, &data.y, &cfg);
        (data, bb)
    }

    #[test]
    fn cem_flips_most_instances_sparsely() {
        let (data, bb) = setup();
        let ctx = BaselineContext::new(&data, data.x.clone(), &bb, 0);
        let cem = Cem::fit(&ctx, CemConfig::default());
        let x = data.x.slice_rows(0, 30);
        let cf = cem.counterfactuals(&x);
        let desired = ctx.desired(&x);
        let preds = bb.predict(&cf);
        let flipped =
            desired.iter().zip(&preds).filter(|(d, p)| d == p).count();
        assert!(flipped >= 15, "only {flipped}/30 flipped");

        // Sparsity signature: the average number of touched coordinates
        // should be small relative to the width.
        let mut touched = 0usize;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                if (cf[(r, c)] - x[(r, c)]).abs() > 1e-3 {
                    touched += 1;
                }
            }
        }
        let per_row = touched as f32 / x.rows() as f32;
        assert!(
            // one categorical switch touches ≥ 2 one-hot columns, so the
            // coordinate count overstates feature-level sparsity
            per_row < x.cols() as f32 * 0.4,
            "CEM touched {per_row} of {} columns on average",
            x.cols()
        );
    }

    #[test]
    fn outputs_clipped_to_unit_box() {
        let (data, bb) = setup();
        let ctx = BaselineContext::new(&data, data.x.clone(), &bb, 1);
        let cem = Cem::fit(&ctx, CemConfig { max_iters: 50, ..Default::default() });
        let cf = cem.counterfactuals(&data.x.slice_rows(0, 10));
        assert!(cf.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
