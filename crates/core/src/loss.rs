//! The four-part counterfactual loss of §III-C / Eq. (3).
//!
//! ```text
//! L = w_v · Hinge(h(x_cf), y')          validity
//!   + w_p · ‖x_cf − x‖₁                 proximity
//!   + w_f · Σ constraint penalties      feasibility
//!   + w_s · g(x_cf − x)                 sparsity (smooth L0 + L1)
//!   + w_kl · KL(q(z|x,y') ‖ N(0, I))    latent regularizer
//! ```
//!
//! The sparsity surrogate `g` follows the paper's "L0/L1 norm": a smooth
//! L0 count `Σ d²/(d² + ε)` (which approaches the number of changed
//! features as ε → 0) blended with the L1 magnitude so gradients exist
//! even for tiny deltas.

use crate::config::{CfLossWeights, RobustMode};
use crate::constraints::Constraint;
use cfx_tensor::{Tape, Tensor, Var};

/// Handles to the individual loss terms of one forward pass, so training
/// can log each component (and tests can assert on them).
#[derive(Debug, Clone, Copy)]
pub struct CfLossParts {
    /// Weighted total (the backward root).
    pub total: Var,
    /// Unweighted hinge validity term.
    pub validity: Var,
    /// Unweighted L1 proximity term.
    pub proximity: Var,
    /// Unweighted summed feasibility penalty.
    pub feasibility: Var,
    /// Unweighted sparsity term.
    pub sparsity: Var,
    /// Unweighted KL term.
    pub kl: Var,
}

/// Smooth-L0 + L1 sparsity penalty `g(x_cf − x)` averaged over the batch:
/// `(1/B) Σ_rows Σ_cols [d²/(d²+ε) + |d|]`.
pub fn sparsity_penalty(
    tape: &mut Tape,
    x: Var,
    x_cf: Var,
    eps: f32,
) -> Var {
    let batch = tape.value(x).rows() as f32;
    let d = tape.sub(x_cf, x);
    let d2 = tape.square(d);
    let denom = tape.add_scalar(d2, eps);
    let l0 = tape.div(d2, denom);
    let l1 = tape.abs(d);
    let both = tape.add(l0, l1);
    let total = tape.sum(both);
    tape.scale(total, 1.0 / batch)
}

/// L1 proximity `d(x, x')` averaged over the batch (per-row L1, then mean).
pub fn proximity_penalty(tape: &mut Tape, x: Var, x_cf: Var) -> Var {
    let batch = tape.value(x).rows() as f32;
    let d = tape.sub(x_cf, x);
    let d = tape.abs(d);
    let total = tape.sum(d);
    tape.scale(total, 1.0 / batch)
}

/// Assembles the full loss.
///
/// * `x` — original encoded batch `(n, w)`;
/// * `x_cf` — counterfactual batch `(n, w)` (mask already applied);
/// * `cf_logits` — black-box logits of `x_cf`, `(n, 1)`;
/// * `desired_pm1` — desired classes as ±1 labels `(n, 1)`;
/// * `mu`/`logvar` — VAE posterior handles for the KL term;
/// * `constraints` — active feasibility constraints;
/// * `recon_logits` — the decoder's raw (pre-sigmoid) outputs, used by the
///   BCE reconstruction anchor (pass `None` to disable it, e.g. when the
///   generator's outputs are already probabilities).
#[allow(clippy::too_many_arguments)]
pub fn cf_loss(
    tape: &mut Tape,
    x: Var,
    x_cf: Var,
    cf_logits: Var,
    desired_pm1: &Tensor,
    mu: Var,
    logvar: Var,
    constraints: &[Constraint],
    weights: &CfLossWeights,
    recon_logits: Option<Var>,
) -> CfLossParts {
    let validity = tape.hinge(cf_logits, desired_pm1, weights.hinge_margin);
    assemble(tape, x, x_cf, validity, mu, logvar, constraints, weights, recon_logits)
}

/// Robust validity term under model multiplicity: the hinge is scored
/// against the ensemble's member logits instead of a single classifier.
///
/// * [`RobustMode::Mean`] hinges the *mean* member logit — members are
///   reduced in index order, so the graph is identical no matter how the
///   logits were produced.
/// * [`RobustMode::WorstCase`] hinges the per-row minimum of the signed
///   logits `y·z_k` — the least favourable member decides, so a CF only
///   stops paying validity loss once every member flips it. The tape has
///   no elementwise `min` op; it is composed as `min(a,b) = a − relu(a−b)`,
///   which is exactly elementwise-min forward and routes the subgradient
///   to the active (smaller) branch backward — deterministically, because
///   `relu` breaks the tie at `a == b` the same way every run.
///
/// Panics on [`RobustMode::Off`] (use [`cf_loss`]) or an empty member
/// list.
pub fn robust_validity(
    tape: &mut Tape,
    member_logits: &[Var],
    desired_pm1: &Tensor,
    margin: f32,
    mode: RobustMode,
) -> Var {
    assert!(
        !member_logits.is_empty(),
        "robust validity needs at least one member logit"
    );
    match mode {
        RobustMode::Off => {
            panic!("RobustMode::Off has no robust validity; use cf_loss")
        }
        RobustMode::Mean => {
            let mut sum = member_logits[0];
            for &z in &member_logits[1..] {
                sum = tape.add(sum, z);
            }
            let mean = tape.scale(sum, 1.0 / member_logits.len() as f32);
            tape.hinge(mean, desired_pm1, margin)
        }
        RobustMode::WorstCase => {
            let y = tape.leaf(desired_pm1.clone());
            let mut worst = tape.mul(y, member_logits[0]);
            for &z in &member_logits[1..] {
                let s = tape.mul(y, z);
                let d = tape.sub(worst, s);
                let r = tape.relu(d);
                worst = tape.sub(worst, r);
            }
            // `worst` is already the signed margin y·z, so hinge against
            // all-ones labels: mean(relu(margin − worst)).
            let ones =
                Tensor::from_vec(desired_pm1.rows(), 1, vec![
                    1.0;
                    desired_pm1.rows()
                ]);
            tape.hinge(worst, &ones, margin)
        }
    }
}

/// [`cf_loss`] with the validity term hinged against an ensemble
/// ([`robust_validity`]) instead of a single black-box logit. Every other
/// term is assembled identically, so `RobustMode` changes exactly one
/// edge of the loss graph.
#[allow(clippy::too_many_arguments)]
pub fn cf_loss_robust(
    tape: &mut Tape,
    x: Var,
    x_cf: Var,
    member_logits: &[Var],
    mode: RobustMode,
    desired_pm1: &Tensor,
    mu: Var,
    logvar: Var,
    constraints: &[Constraint],
    weights: &CfLossWeights,
    recon_logits: Option<Var>,
) -> CfLossParts {
    let validity =
        robust_validity(tape, member_logits, desired_pm1, weights.hinge_margin, mode);
    assemble(tape, x, x_cf, validity, mu, logvar, constraints, weights, recon_logits)
}

/// Shared assembly of every non-validity term plus the weighted total.
#[allow(clippy::too_many_arguments)]
fn assemble(
    tape: &mut Tape,
    x: Var,
    x_cf: Var,
    validity: Var,
    mu: Var,
    logvar: Var,
    constraints: &[Constraint],
    weights: &CfLossWeights,
    recon_logits: Option<Var>,
) -> CfLossParts {
    let proximity = proximity_penalty(tape, x, x_cf);
    let sparsity = sparsity_penalty(tape, x, x_cf, weights.sparsity_eps);
    let kl = tape.kl_gauss(mu, logvar);

    // Sum of all constraint penalties (zero-size scalar if none).
    let mut feas = tape.leaf(Tensor::scalar(0.0));
    for c in constraints {
        let p = c.penalty_tape(tape, x, x_cf);
        feas = tape.add(feas, p);
    }

    let recon = match recon_logits {
        Some(logits) => {
            // Fused sigmoid+BCE against the `x` node itself: no target
            // copy, and the kernel reuses the probabilities it computed
            // forward in its backward rule.
            let width = tape.value(x).cols() as f32;
            let bce = tape.sigmoid_bce_node(logits, x);
            // Scale the per-element mean to a per-row sum (like the other
            // terms) so the anchor has comparable magnitude.
            tape.scale(bce, width)
        }
        None => tape.leaf(Tensor::scalar(0.0)),
    };

    let wv = tape.scale(validity, weights.validity);
    let wp = tape.scale(proximity, weights.proximity);
    let wf = tape.scale(feas, weights.feasibility);
    let ws = tape.scale(sparsity, weights.sparsity);
    let wk = tape.scale(kl, weights.kl);
    let wr = tape.scale(recon, weights.recon_bce);
    let mut total = tape.add(wv, wp);
    total = tape.add(total, wr);
    total = tape.add(total, wf);
    total = tape.add(total, ws);
    total = tape.add(total, wk);

    CfLossParts {
        total,
        validity,
        proximity,
        feasibility: feas,
        sparsity,
        kl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_counts_changed_features() {
        // Two rows: one changes 2 of 4 features by a lot, one changes none.
        let x = Tensor::from_vec(2, 4, vec![0.5; 8]);
        let cf = Tensor::from_vec(
            2,
            4,
            vec![0.9, 0.5, 0.1, 0.5, 0.5, 0.5, 0.5, 0.5],
        );
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf);
        let s = sparsity_penalty(&mut tape, xv, cfv, 1e-4);
        // smooth-L0 ≈ 2 changed features / 2 rows = 1, plus L1 = 0.8/2 = 0.4.
        let v = tape.value(s).item();
        assert!((v - 1.4).abs() < 0.01, "sparsity {v}");
    }

    #[test]
    fn proximity_is_mean_row_l1() {
        let x = Tensor::from_vec(2, 3, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let cf = Tensor::from_vec(2, 3, vec![0.5, 0.0, 0.0, 1.0, 0.0, 1.0]);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf);
        let p = proximity_penalty(&mut tape, xv, cfv);
        // row L1s are 0.5 and 1.0 → mean 0.75.
        assert!((tape.value(p).item() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn total_is_weighted_sum_of_parts() {
        let x = Tensor::from_vec(1, 2, vec![0.2, 0.8]);
        let cf = Tensor::from_vec(1, 2, vec![0.6, 0.8]);
        let logits = Tensor::from_vec(1, 1, vec![-0.3]);
        let desired = Tensor::from_vec(1, 1, vec![1.0]);
        let mu = Tensor::from_vec(1, 2, vec![0.1, -0.2]);
        let lv = Tensor::from_vec(1, 2, vec![0.0, 0.1]);
        let w = CfLossWeights::default();

        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf);
        let lg = tape.leaf(logits);
        let muv = tape.leaf(mu);
        let lvv = tape.leaf(lv);
        let parts =
            cf_loss(&mut tape, xv, cfv, lg, &desired, muv, lvv, &[], &w, None);
        let expected = w.validity * tape.value(parts.validity).item()
            + w.proximity * tape.value(parts.proximity).item()
            + w.feasibility * tape.value(parts.feasibility).item()
            + w.sparsity * tape.value(parts.sparsity).item()
            + w.kl * tape.value(parts.kl).item();
        assert!((tape.value(parts.total).item() - expected).abs() < 1e-5);
        // No constraints → zero feasibility.
        assert_eq!(tape.value(parts.feasibility).item(), 0.0);
    }

    #[test]
    fn mean_mode_matches_hinge_of_mean_logit() {
        // Two members, two rows: the mean-mode validity must equal a
        // plain hinge on the averaged logits.
        let z0 = Tensor::from_vec(2, 1, vec![1.0, -2.0]);
        let z1 = Tensor::from_vec(2, 1, vec![3.0, 0.5]);
        let desired = Tensor::from_vec(2, 1, vec![1.0, -1.0]);
        let mut tape = Tape::new();
        let a = tape.leaf(z0);
        let b = tape.leaf(z1);
        let v = robust_validity(&mut tape, &[a, b], &desired, 0.5, RobustMode::Mean);
        // Mean logits: [2.0, -0.75]; signed margins y·z: [2.0, 0.75];
        // hinge(0.5): mean(relu(0.5 - s)) = mean(0, 0) = 0.
        assert!(tape.value(v).item().abs() < 1e-6);

        let z2 = Tensor::from_vec(2, 1, vec![0.2, -2.0]);
        let z3 = Tensor::from_vec(2, 1, vec![0.4, 3.0]);
        let mut tape = Tape::new();
        let a = tape.leaf(z2);
        let b = tape.leaf(z3);
        let v = robust_validity(&mut tape, &[a, b], &desired, 0.5, RobustMode::Mean);
        // Mean logits: [0.3, 0.5]; signed: [0.3, -0.5];
        // hinge: mean(0.2, 1.0) = 0.6.
        assert!((tape.value(v).item() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn worst_case_hinges_least_favourable_member() {
        // Row 0 (desired +1): members disagree (+2, -1) → worst signed
        // margin -1 → hinge 1.5. Row 1 (desired -1): members agree
        // (-3, -1 → signed +3, +1) → worst +1 → hinge 0.
        let z0 = Tensor::from_vec(2, 1, vec![2.0, -3.0]);
        let z1 = Tensor::from_vec(2, 1, vec![-1.0, -1.0]);
        let desired = Tensor::from_vec(2, 1, vec![1.0, -1.0]);
        let mut tape = Tape::new();
        let a = tape.leaf(z0);
        let b = tape.leaf(z1);
        let v = robust_validity(
            &mut tape,
            &[a, b],
            &desired,
            0.5,
            RobustMode::WorstCase,
        );
        // mean(1.5, 0.0) = 0.75.
        assert!((tape.value(v).item() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn worst_case_exceeds_mean_penalty_under_disagreement() {
        let z0 = Tensor::from_vec(3, 1, vec![4.0, 0.2, -0.1]);
        let z1 = Tensor::from_vec(3, 1, vec![-4.0, 0.3, -0.2]);
        let desired = Tensor::from_vec(3, 1, vec![1.0, 1.0, -1.0]);
        let mut tape = Tape::new();
        let a = tape.leaf(z0);
        let b = tape.leaf(z1);
        let mean =
            robust_validity(&mut tape, &[a, b], &desired, 0.5, RobustMode::Mean);
        let worst = robust_validity(
            &mut tape,
            &[a, b],
            &desired,
            0.5,
            RobustMode::WorstCase,
        );
        assert!(
            tape.value(worst).item() >= tape.value(mean).item(),
            "worst-case must dominate the mean penalty"
        );
    }

    #[test]
    fn robust_loss_is_differentiable_and_order_invariant() {
        let x = Tensor::from_vec(2, 3, vec![0.2, 0.8, 0.5, 0.4, 0.1, 0.9]);
        let cf0 = Tensor::from_vec(2, 3, vec![0.3, 0.7, 0.5, 0.5, 0.2, 0.8]);
        let desired = Tensor::from_vec(2, 1, vec![1.0, -1.0]);
        let w = CfLossWeights::default();
        let readouts = [
            Tensor::from_vec(3, 1, vec![1.0, -1.0, 0.5]),
            Tensor::from_vec(3, 1, vec![-0.5, 0.8, 0.2]),
        ];
        for mode in [RobustMode::Mean, RobustMode::WorstCase] {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let cfv = tape.leaf(cf0.clone());
            let logits: Vec<Var> = readouts
                .iter()
                .map(|r| {
                    let rv = tape.leaf(r.clone());
                    tape.matmul(cfv, rv)
                })
                .collect();
            let mu = tape.leaf(Tensor::zeros(2, 2));
            let lv = tape.leaf(Tensor::zeros(2, 2));
            let parts = cf_loss_robust(
                &mut tape, xv, cfv, &logits, mode, &desired, mu, lv, &[], &w,
                None,
            );
            tape.backward(parts.total);
            let g = tape.grad(cfv);
            assert!(g.max_abs() > 0.0, "{mode:?}: no gradient reached the CF");
            assert!(g.all_finite());
        }
    }

    #[test]
    fn loss_is_differentiable_end_to_end() {
        let x = Tensor::from_vec(2, 3, vec![0.2, 0.8, 0.5, 0.4, 0.1, 0.9]);
        let cf0 = Tensor::from_vec(2, 3, vec![0.3, 0.7, 0.5, 0.5, 0.2, 0.8]);
        let desired = Tensor::from_vec(2, 1, vec![1.0, -1.0]);
        let w = CfLossWeights::default();

        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf0);
        // Pretend logits are a linear readout of the cf so grads flow.
        let readout = tape.leaf(Tensor::from_vec(3, 1, vec![1.0, -1.0, 0.5]));
        let lg = tape.matmul(cfv, readout);
        let mu = tape.leaf(Tensor::zeros(2, 2));
        let lv = tape.leaf(Tensor::zeros(2, 2));
        let parts = cf_loss(&mut tape, xv, cfv, lg, &desired, mu, lv, &[], &w, None);
        tape.backward(parts.total);
        let g = tape.grad(cfv);
        assert!(g.max_abs() > 0.0, "no gradient flowed to the counterfactual");
        assert!(g.all_finite());
    }
}
