//! The four-part counterfactual loss of §III-C / Eq. (3).
//!
//! ```text
//! L = w_v · Hinge(h(x_cf), y')          validity
//!   + w_p · ‖x_cf − x‖₁                 proximity
//!   + w_f · Σ constraint penalties      feasibility
//!   + w_s · g(x_cf − x)                 sparsity (smooth L0 + L1)
//!   + w_kl · KL(q(z|x,y') ‖ N(0, I))    latent regularizer
//! ```
//!
//! The sparsity surrogate `g` follows the paper's "L0/L1 norm": a smooth
//! L0 count `Σ d²/(d² + ε)` (which approaches the number of changed
//! features as ε → 0) blended with the L1 magnitude so gradients exist
//! even for tiny deltas.

use crate::config::CfLossWeights;
use crate::constraints::Constraint;
use cfx_tensor::{Tape, Tensor, Var};

/// Handles to the individual loss terms of one forward pass, so training
/// can log each component (and tests can assert on them).
#[derive(Debug, Clone, Copy)]
pub struct CfLossParts {
    /// Weighted total (the backward root).
    pub total: Var,
    /// Unweighted hinge validity term.
    pub validity: Var,
    /// Unweighted L1 proximity term.
    pub proximity: Var,
    /// Unweighted summed feasibility penalty.
    pub feasibility: Var,
    /// Unweighted sparsity term.
    pub sparsity: Var,
    /// Unweighted KL term.
    pub kl: Var,
}

/// Smooth-L0 + L1 sparsity penalty `g(x_cf − x)` averaged over the batch:
/// `(1/B) Σ_rows Σ_cols [d²/(d²+ε) + |d|]`.
pub fn sparsity_penalty(
    tape: &mut Tape,
    x: Var,
    x_cf: Var,
    eps: f32,
) -> Var {
    let batch = tape.value(x).rows() as f32;
    let d = tape.sub(x_cf, x);
    let d2 = tape.square(d);
    let denom = tape.add_scalar(d2, eps);
    let l0 = tape.div(d2, denom);
    let l1 = tape.abs(d);
    let both = tape.add(l0, l1);
    let total = tape.sum(both);
    tape.scale(total, 1.0 / batch)
}

/// L1 proximity `d(x, x')` averaged over the batch (per-row L1, then mean).
pub fn proximity_penalty(tape: &mut Tape, x: Var, x_cf: Var) -> Var {
    let batch = tape.value(x).rows() as f32;
    let d = tape.sub(x_cf, x);
    let d = tape.abs(d);
    let total = tape.sum(d);
    tape.scale(total, 1.0 / batch)
}

/// Assembles the full loss.
///
/// * `x` — original encoded batch `(n, w)`;
/// * `x_cf` — counterfactual batch `(n, w)` (mask already applied);
/// * `cf_logits` — black-box logits of `x_cf`, `(n, 1)`;
/// * `desired_pm1` — desired classes as ±1 labels `(n, 1)`;
/// * `mu`/`logvar` — VAE posterior handles for the KL term;
/// * `constraints` — active feasibility constraints;
/// * `recon_logits` — the decoder's raw (pre-sigmoid) outputs, used by the
///   BCE reconstruction anchor (pass `None` to disable it, e.g. when the
///   generator's outputs are already probabilities).
#[allow(clippy::too_many_arguments)]
pub fn cf_loss(
    tape: &mut Tape,
    x: Var,
    x_cf: Var,
    cf_logits: Var,
    desired_pm1: &Tensor,
    mu: Var,
    logvar: Var,
    constraints: &[Constraint],
    weights: &CfLossWeights,
    recon_logits: Option<Var>,
) -> CfLossParts {
    let validity = tape.hinge(cf_logits, desired_pm1, weights.hinge_margin);
    let proximity = proximity_penalty(tape, x, x_cf);
    let sparsity = sparsity_penalty(tape, x, x_cf, weights.sparsity_eps);
    let kl = tape.kl_gauss(mu, logvar);

    // Sum of all constraint penalties (zero-size scalar if none).
    let mut feas = tape.leaf(Tensor::scalar(0.0));
    for c in constraints {
        let p = c.penalty_tape(tape, x, x_cf);
        feas = tape.add(feas, p);
    }

    let recon = match recon_logits {
        Some(logits) => {
            // Fused sigmoid+BCE against the `x` node itself: no target
            // copy, and the kernel reuses the probabilities it computed
            // forward in its backward rule.
            let width = tape.value(x).cols() as f32;
            let bce = tape.sigmoid_bce_node(logits, x);
            // Scale the per-element mean to a per-row sum (like the other
            // terms) so the anchor has comparable magnitude.
            tape.scale(bce, width)
        }
        None => tape.leaf(Tensor::scalar(0.0)),
    };

    let wv = tape.scale(validity, weights.validity);
    let wp = tape.scale(proximity, weights.proximity);
    let wf = tape.scale(feas, weights.feasibility);
    let ws = tape.scale(sparsity, weights.sparsity);
    let wk = tape.scale(kl, weights.kl);
    let wr = tape.scale(recon, weights.recon_bce);
    let mut total = tape.add(wv, wp);
    total = tape.add(total, wr);
    total = tape.add(total, wf);
    total = tape.add(total, ws);
    total = tape.add(total, wk);

    CfLossParts {
        total,
        validity,
        proximity,
        feasibility: feas,
        sparsity,
        kl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_counts_changed_features() {
        // Two rows: one changes 2 of 4 features by a lot, one changes none.
        let x = Tensor::from_vec(2, 4, vec![0.5; 8]);
        let cf = Tensor::from_vec(
            2,
            4,
            vec![0.9, 0.5, 0.1, 0.5, 0.5, 0.5, 0.5, 0.5],
        );
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf);
        let s = sparsity_penalty(&mut tape, xv, cfv, 1e-4);
        // smooth-L0 ≈ 2 changed features / 2 rows = 1, plus L1 = 0.8/2 = 0.4.
        let v = tape.value(s).item();
        assert!((v - 1.4).abs() < 0.01, "sparsity {v}");
    }

    #[test]
    fn proximity_is_mean_row_l1() {
        let x = Tensor::from_vec(2, 3, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let cf = Tensor::from_vec(2, 3, vec![0.5, 0.0, 0.0, 1.0, 0.0, 1.0]);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf);
        let p = proximity_penalty(&mut tape, xv, cfv);
        // row L1s are 0.5 and 1.0 → mean 0.75.
        assert!((tape.value(p).item() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn total_is_weighted_sum_of_parts() {
        let x = Tensor::from_vec(1, 2, vec![0.2, 0.8]);
        let cf = Tensor::from_vec(1, 2, vec![0.6, 0.8]);
        let logits = Tensor::from_vec(1, 1, vec![-0.3]);
        let desired = Tensor::from_vec(1, 1, vec![1.0]);
        let mu = Tensor::from_vec(1, 2, vec![0.1, -0.2]);
        let lv = Tensor::from_vec(1, 2, vec![0.0, 0.1]);
        let w = CfLossWeights::default();

        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf);
        let lg = tape.leaf(logits);
        let muv = tape.leaf(mu);
        let lvv = tape.leaf(lv);
        let parts =
            cf_loss(&mut tape, xv, cfv, lg, &desired, muv, lvv, &[], &w, None);
        let expected = w.validity * tape.value(parts.validity).item()
            + w.proximity * tape.value(parts.proximity).item()
            + w.feasibility * tape.value(parts.feasibility).item()
            + w.sparsity * tape.value(parts.sparsity).item()
            + w.kl * tape.value(parts.kl).item();
        assert!((tape.value(parts.total).item() - expected).abs() < 1e-5);
        // No constraints → zero feasibility.
        assert_eq!(tape.value(parts.feasibility).item(), 0.0);
    }

    #[test]
    fn loss_is_differentiable_end_to_end() {
        let x = Tensor::from_vec(2, 3, vec![0.2, 0.8, 0.5, 0.4, 0.1, 0.9]);
        let cf0 = Tensor::from_vec(2, 3, vec![0.3, 0.7, 0.5, 0.5, 0.2, 0.8]);
        let desired = Tensor::from_vec(2, 1, vec![1.0, -1.0]);
        let w = CfLossWeights::default();

        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf0);
        // Pretend logits are a linear readout of the cf so grads flow.
        let readout = tape.leaf(Tensor::from_vec(3, 1, vec![1.0, -1.0, 0.5]));
        let lg = tape.matmul(cfv, readout);
        let mu = tape.leaf(Tensor::zeros(2, 2));
        let lv = tape.leaf(Tensor::zeros(2, 2));
        let parts = cf_loss(&mut tape, xv, cfv, lg, &desired, mu, lv, &[], &w, None);
        tape.backward(parts.total);
        let g = tape.grad(cfv);
        assert!(g.max_abs() > 0.0, "no gradient flowed to the counterfactual");
        assert!(g.all_finite());
    }
}
