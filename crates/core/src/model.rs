//! The paper's counterfactual generator: a conditional VAE trained with
//! the four-part loss, against a frozen black-box classifier (Fig. 4).

use crate::config::{ConstraintMode, FeasibleCfConfig};
use crate::constraints::Constraint;
use crate::loss::cf_loss;
use crate::mask::ImmutableMask;
use cfx_data::{DatasetId, EncodedDataset};
use cfx_models::{BlackBox, Cvae};
use cfx_tensor::stable_sigmoid;
use cfx_tensor::Activation;
use cfx_tensor::init::randn_tensor;
use cfx_tensor::{clip_grad_norm, Adam, Module, Optimizer, Tape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Mean loss components over one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Weighted total loss.
    pub total: f32,
    /// Hinge validity term.
    pub validity: f32,
    /// L1 proximity term.
    pub proximity: f32,
    /// Constraint penalty term.
    pub feasibility: f32,
    /// Sparsity term.
    pub sparsity: f32,
    /// KL term.
    pub kl: f32,
}

/// The feasible-counterfactual model: VAE generator + frozen black box +
/// causal constraints + immutable mask.
#[derive(Debug, Clone)]
pub struct FeasibleCfModel {
    vae: Cvae,
    blackbox: BlackBox,
    constraints: Vec<Constraint>,
    mask: ImmutableMask,
    config: FeasibleCfConfig,
}

impl FeasibleCfModel {
    /// Creates an untrained model over an encoded dataset.
    ///
    /// `blackbox` should already be trained (the paper trains it first and
    /// freezes it); `constraints` are the active feasibility constraints
    /// for the configured [`ConstraintMode`].
    pub fn new(
        data: &EncodedDataset,
        blackbox: BlackBox,
        constraints: Vec<Constraint>,
        config: FeasibleCfConfig,
    ) -> Self {
        assert_eq!(
            blackbox.input_dim(),
            data.width(),
            "black box width must match the encoded data"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Decoder emits logits; sigmoid is applied explicitly so the BCE
        // reconstruction anchor (see CfLossWeights::recon_bce) can work on
        // the pre-activation values.
        let mut vae = Cvae::new_with_output(
            data.width(),
            config.latent_dim,
            config.dropout,
            Activation::Identity,
            &mut rng,
        );
        // The paper applies 30 % dropout to every layer; through the
        // 12-unit encoder trunk that much input noise makes the posterior
        // collapse to the prior and the generator degenerate to one
        // prototype per class (no per-individual counterfactuals, no
        // latent manifold). We keep Table II's dropout on the decoder and
        // disable it on the encoder — the minimal deviation that preserves
        // the architecture while keeping the latent code informative.
        vae.encoder.keep_prob = 1.0;
        let mask = if config.mask_immutable {
            ImmutableMask::from_schema(&data.schema, &data.encoding)
        } else {
            ImmutableMask::all_mutable(data.width())
        };
        FeasibleCfModel { vae, blackbox, constraints, mask, config }
    }

    /// Builds the paper's constraints for a dataset/mode pair (§IV-E):
    /// unary on `age`/`lsat`, binary on `education⇒age`/`tier⇒lsat`.
    pub fn paper_constraints(
        dataset: DatasetId,
        data: &EncodedDataset,
        mode: ConstraintMode,
        c1: f32,
        c2: f32,
    ) -> Vec<Constraint> {
        match mode {
            ConstraintMode::Unary => vec![Constraint::unary(
                &data.schema,
                &data.encoding,
                dataset.unary_constraint_feature(),
            )],
            ConstraintMode::Binary => {
                let (cause, effect) = dataset.binary_constraint_features();
                vec![Constraint::binary(
                    &data.schema,
                    &data.encoding,
                    cause,
                    effect,
                    c1,
                    c2,
                )]
            }
        }
    }

    /// Trains the VAE on `x` (encoded training rows); the black box stays
    /// frozen. Returns per-epoch mean loss components.
    ///
    /// Epochs are class-balanced: both flip directions (0→1 recourse and
    /// 1→0) appear equally often, with the minority direction oversampled.
    /// Without this, on skewed benchmarks like Law School (≈80 % positive)
    /// the dominant direction swamps the hinge term and the generator
    /// never learns the recourse flips the evaluation asks for.
    pub fn fit(&mut self, x: &Tensor) -> Vec<EpochStats> {
        self.fit_with(x, |_, _| {})
    }

    /// Like [`fit`](Self::fit), invoking `on_epoch(epoch_index, stats)`
    /// after every epoch — the hook for early stopping, logging, or
    /// validation monitoring (pair it with
    /// [`validation_stats`](Self::validation_stats)).
    pub fn fit_with(
        &mut self,
        x: &Tensor,
        mut on_epoch: impl FnMut(usize, &EpochStats),
    ) -> Vec<EpochStats> {
        let n = x.rows();
        assert!(n > 0, "cannot fit on an empty dataset");
        let cfg = self.config.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF17);
        let mut opt = Adam::with_lr(cfg.learning_rate);
        let preds = self.blackbox.predict(x);
        let group0: Vec<usize> =
            (0..n).filter(|&r| preds[r] == 0).collect();
        let group1: Vec<usize> =
            (0..n).filter(|&r| preds[r] == 1).collect();
        let mut history = Vec::with_capacity(cfg.epochs);

        for epoch in 0..cfg.epochs {
            let order = balanced_order(&group0, &group1, n, &mut rng);
            // KL annealing: ramp the KL weight over the first half of
            // training (the standard cure for posterior collapse — with a
            // full-strength KL from step one, the narrow Table II encoder
            // gives up on the latent code and the generator degenerates to
            // one prototype per class).
            let anneal =
                ((epoch as f32 + 1.0) / (cfg.epochs as f32 / 2.0)).min(1.0);
            let mut sums = [0.0f32; 6];
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let xb = x.gather_rows(chunk);
                let stats = self.train_batch(&xb, &mut opt, &mut rng, anneal);
                sums[0] += stats.total;
                sums[1] += stats.validity;
                sums[2] += stats.proximity;
                sums[3] += stats.feasibility;
                sums[4] += stats.sparsity;
                sums[5] += stats.kl;
                batches += 1;
            }
            let b = batches.max(1) as f32;
            let stats = EpochStats {
                total: sums[0] / b,
                validity: sums[1] / b,
                proximity: sums[2] / b,
                feasibility: sums[3] / b,
                sparsity: sums[4] / b,
                kl: sums[5] / b,
            };
            on_epoch(epoch, &stats);
            history.push(stats);
        }
        history
    }

    /// Generation-quality snapshot on a held-out set: the fraction of
    /// counterfactuals that flip to the desired class and the fraction
    /// satisfying every constraint. Use inside a
    /// [`fit_with`](Self::fit_with) callback for validation-based early
    /// stopping.
    pub fn validation_stats(&self, x_val: &Tensor) -> (f32, f32) {
        let batch = self.explain_batch(x_val);
        (batch.validity_rate(), batch.feasibility_rate())
    }

    fn train_batch(
        &mut self,
        xb: &Tensor,
        opt: &mut Adam,
        rng: &mut StdRng,
        kl_anneal: f32,
    ) -> EpochStats {
        let n = xb.rows();
        // Desired class = opposite of the black box's current prediction.
        let preds = self.blackbox.predict(xb);
        let desired: Vec<f32> =
            preds.iter().map(|&p| 1.0 - p as f32).collect();
        let cond = Tensor::from_vec(n, 1, desired.clone());
        let desired_pm1 = Tensor::from_vec(
            n,
            1,
            desired.iter().map(|&d| 2.0 * d - 1.0).collect(),
        );
        let eps = randn_tensor(n, self.vae.latent_dim(), rng);

        let mut tape = Tape::new();
        let xv = tape.leaf(xb.clone());
        let mut pv = Vec::new();
        let out =
            self.vae.forward(&mut tape, xv, &cond, &eps, &mut pv, true, rng);
        let probs = tape.sigmoid(out.recon);
        let x_cf = self.mask.apply_tape(&mut tape, xv, probs);
        let logits = self.blackbox.forward_tape(&mut tape, x_cf);
        let parts = cf_loss(
            &mut tape,
            xv,
            x_cf,
            logits,
            &desired_pm1,
            out.mu,
            out.logvar,
            &self.constraints,
            &{
                let mut w = self.config.weights;
                w.kl *= kl_anneal;
                w
            },
            Some(out.recon),
        );
        let stats = EpochStats {
            total: tape.value(parts.total).item(),
            validity: tape.value(parts.validity).item(),
            proximity: tape.value(parts.proximity).item(),
            feasibility: tape.value(parts.feasibility).item(),
            sparsity: tape.value(parts.sparsity).item(),
            kl: tape.value(parts.kl).item(),
        };
        tape.backward(parts.total);
        let mut grads: Vec<Tensor> = pv.iter().map(|&v| tape.grad(v)).collect();
        clip_grad_norm(&mut grads, 5.0);
        opt.step(&mut self.vae, &grads);
        stats
    }

    /// Generates one counterfactual per row of `x`, deterministically
    /// (posterior-mean decode): encode under the desired class, decode,
    /// restore immutable columns.
    pub fn counterfactuals(&self, x: &Tensor) -> Tensor {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xCF);
        self.counterfactuals_with_noise(x, 0.0, &mut rng)
    }

    /// Stochastic variant: perturbs the latent code by `noise_scale`
    /// standard deviations ("we perturbed the output of the encoder to the
    /// decoder", §III-C).
    pub fn counterfactuals_with_noise(
        &self,
        x: &Tensor,
        noise_scale: f32,
        rng: &mut StdRng,
    ) -> Tensor {
        let cond = self.desired_cond(x);
        let recon =
            self.vae.generate(x, &cond, noise_scale, rng).map(stable_sigmoid);
        self.mask.apply(x, &recon)
    }

    /// The `(n, 1)` desired-class column for a batch (opposite of the
    /// black box's prediction).
    pub fn desired_cond(&self, x: &Tensor) -> Tensor {
        let preds = self.blackbox.predict(x);
        Tensor::from_vec(
            x.rows(),
            1,
            preds.iter().map(|&p| 1.0 - p as f32).collect(),
        )
    }

    /// Posterior means of `x` under the desired class — the latent points
    /// used for the manifold analysis (Fig. 5/6).
    pub fn latent_mu(&self, x: &Tensor) -> Tensor {
        let cond = self.desired_cond(x);
        let (mu, _) = self.vae.encode(x, &cond);
        mu
    }

    /// The frozen classifier.
    pub fn blackbox(&self) -> &BlackBox {
        &self.blackbox
    }

    /// Active constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The generator network.
    pub fn vae(&self) -> &Cvae {
        &self.vae
    }

    /// Immutable-column mask in effect.
    pub fn mask(&self) -> &ImmutableMask {
        &self.mask
    }

    /// Training configuration.
    pub fn config(&self) -> &FeasibleCfConfig {
        &self.config
    }
}

/// Builds a length-`n` epoch order drawing alternately from the two
/// prediction groups (shuffled, minority oversampled by cycling). Falls
/// back to a plain shuffle when either group is empty.
fn balanced_order(
    group0: &[usize],
    group1: &[usize],
    n: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    if group0.is_empty() || group1.is_empty() {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        return order;
    }
    let mut g0 = group0.to_vec();
    let mut g1 = group1.to_vec();
    g0.shuffle(rng);
    g1.shuffle(rng);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                g0[(i / 2) % g0.len()]
            } else {
                g1[(i / 2) % g1.len()]
            }
        })
        .collect()
}

impl Module for FeasibleCfModel {
    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        self.vae.visit_params(f);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.vae.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_models::BlackBoxConfig;

    fn small_setup() -> (EncodedDataset, BlackBox) {
        let raw = DatasetId::Adult.generate_clean(1200, 3);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 10, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        (data, bb)
    }

    fn quick_config(mode: ConstraintMode) -> FeasibleCfConfig {
        FeasibleCfConfig::paper(DatasetId::Adult, mode)
            .with_epochs(6)
            .with_batch_size(256)
    }

    #[test]
    fn fit_reduces_total_loss() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        );
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        let history = model.fit(&data.x);
        let first = history.first().unwrap().total;
        let last = history.last().unwrap().total;
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn counterfactuals_keep_immutable_columns() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        );
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        model.fit(&data.x.slice_rows(0, 512));
        let x = data.x.slice_rows(0, 20);
        let cf = model.counterfactuals(&x);
        let frozen = data.encoding.immutable_columns(&data.schema);
        for r in 0..x.rows() {
            for &c in &frozen {
                assert_eq!(
                    x[(r, c)],
                    cf[(r, c)],
                    "immutable column {c} changed in row {r}"
                );
            }
        }
    }

    #[test]
    fn training_yields_feasible_and_valid_counterfactuals() {
        // Needs a few thousand rows to converge (the untrained model is
        // not a meaningful baseline: a random decoder emits near-constant
        // ~0.5 outputs that trivially satisfy "age does not decrease").
        let raw = DatasetId::Adult.generate_clean(4_000, 3);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 12, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        let cfg = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary)
            .with_step_budget_of(DatasetId::Adult, 4_000);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        );
        let mut trained = FeasibleCfModel::new(&data, bb, constraints, cfg);
        trained.fit(&data.x);

        // Evaluate in the recourse direction (negative-class inputs).
        let preds = trained.blackbox().predict(&data.x);
        let denied: Vec<usize> =
            (0..data.len()).filter(|&r| preds[r] == 0).take(150).collect();
        let x = data.x.gather_rows(&denied);
        let batch = trained.explain_batch(&x);
        assert!(
            batch.feasibility_rate() > 0.7,
            "trained feasibility too low: {}",
            batch.feasibility_rate()
        );
        assert!(
            batch.validity_rate() > 0.6,
            "trained validity too low: {}",
            batch.validity_rate()
        );
    }

    #[test]
    fn fit_with_invokes_callback_every_epoch() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary).with_epochs(3);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        );
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        let mut seen = Vec::new();
        let history = model.fit_with(&data.x.slice_rows(0, 512), |e, s| {
            seen.push((e, s.total));
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[2].0, 2);
        for ((_, t), h) in seen.iter().zip(&history) {
            assert_eq!(*t, h.total);
        }
        // Validation snapshot runs end-to-end.
        let (v, f) = model.validation_stats(&data.x.slice_rows(0, 50));
        assert!((0.0..=1.0).contains(&v));
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn desired_cond_flips_predictions() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary);
        let model = FeasibleCfModel::new(&data, bb, vec![], cfg);
        let x = data.x.slice_rows(0, 50);
        let preds = model.blackbox().predict(&x);
        let cond = model.desired_cond(&x);
        for (p, c) in preds.iter().zip(cond.as_slice()) {
            assert_eq!(*c, 1.0 - *p as f32);
        }
    }

    #[test]
    fn latent_mu_has_latent_width() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Binary);
        let model = FeasibleCfModel::new(&data, bb, vec![], cfg.clone());
        let mu = model.latent_mu(&data.x.slice_rows(0, 10));
        assert_eq!(mu.shape(), (10, cfg.latent_dim));
    }
}
