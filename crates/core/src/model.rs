//! The paper's counterfactual generator: a conditional VAE trained with
//! the four-part loss, against a frozen black-box classifier (Fig. 4).

use crate::config::{
    ConstraintMode, ExplainConfig, FeasibleCfConfig, RobustMode,
    WatchdogConfig,
};
use crate::constraints::Constraint;
use crate::loss::{cf_loss, cf_loss_robust};
use crate::mask::ImmutableMask;
use cfx_data::{DatasetId, EncodedDataset};
use cfx_models::{BlackBox, Cvae, EnsembleBlackBox};
use cfx_tensor::init::randn_tensor;
use cfx_tensor::stable_sigmoid;
use cfx_tensor::Activation;
use cfx_tensor::checkpoint::{crash_point, Checkpoint, CheckpointConfig};
use cfx_tensor::{guard, CfxError};
use cfx_tensor::{Adam, Module, Optimizer, Tape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Mean loss components over one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Weighted total loss.
    pub total: f32,
    /// Hinge validity term.
    pub validity: f32,
    /// L1 proximity term.
    pub proximity: f32,
    /// Constraint penalty term.
    pub feasibility: f32,
    /// Sparsity term.
    pub sparsity: f32,
    /// KL term.
    pub kl: f32,
}

/// What the training watchdog detected in a failed epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDetected {
    /// An epoch produced a NaN/Inf loss (checked before the optimizer
    /// step, so corrupted gradients never touch the weights).
    NonFiniteLoss,
    /// Backward produced a NaN/Inf gradient despite a finite loss.
    NonFiniteGrad,
    /// The epoch loss blew past the divergence threshold relative to the
    /// best epoch seen so far.
    Diverged,
}

impl std::fmt::Display for FaultDetected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultDetected::NonFiniteLoss => write!(f, "non-finite loss"),
            FaultDetected::NonFiniteGrad => write!(f, "non-finite gradient"),
            FaultDetected::Diverged => write!(f, "loss divergence"),
        }
    }
}

/// One rollback performed by the training watchdog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Epoch index that faulted (the retry re-runs this epoch).
    pub epoch: usize,
    /// 1-based retry count at the time of the rollback.
    pub retry: usize,
    /// What tripped the watchdog.
    pub fault: FaultDetected,
    /// Learning rate in effect *after* the backoff.
    pub learning_rate: f32,
}

/// Terminal state of a watchdog-supervised training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainStatus {
    /// No fault was ever detected.
    Completed,
    /// At least one rollback happened, but training finished the schedule.
    Recovered,
    /// The retry budget ran out; the model holds the best snapshot.
    Exhausted,
    /// The per-call epoch budget ran out before the schedule finished; a
    /// checkpoint holds the full state and a resumed call continues
    /// bitwise-identically (only reachable through
    /// [`FeasibleCfModel::fit_with_checkpoints`] with an
    /// `epoch_budget`).
    Paused,
}

/// Outcome of [`FeasibleCfModel::fit`]: the per-epoch loss history plus
/// the watchdog's recovery record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss components of every *completed* epoch (faulted epoch
    /// attempts are not recorded).
    pub history: Vec<EpochStats>,
    /// Every rollback the watchdog performed, in order.
    pub events: Vec<RecoveryEvent>,
    /// Total rollbacks (`events.len()`).
    pub retries: usize,
    /// How training ended.
    pub status: TrainStatus,
}

impl TrainReport {
    /// Total loss of the first completed epoch, if any.
    pub fn first_total(&self) -> Option<f32> {
        self.history.first().map(|s| s.total)
    }

    /// Total loss of the last completed epoch, if any.
    pub fn last_total(&self) -> Option<f32> {
        self.history.last().map(|s| s.total)
    }
}

/// Nearest-neighbor fallback pool for graceful generation degradation: a
/// subsample of training rows with their black-box classes, searched
/// FACE-style when the decoder cannot produce a usable counterfactual.
#[derive(Debug, Clone)]
pub(crate) struct FallbackPool {
    /// Encoded training rows (subsampled).
    pub rows: Vec<Vec<f32>>,
    /// Black-box class of each pool row.
    pub classes: Vec<u8>,
}

impl FallbackPool {
    /// Subsamples at most `cap` training rows (evenly strided, so both
    /// classes stay represented) and records their black-box classes.
    /// `cap` comes from [`ExplainConfig::fallback_pool_cap`]; the default
    /// keeps the pool large enough that both classes appear on every
    /// benchmark and small enough that the O(pool²) distance matrix
    /// stays cheap.
    fn build(data: &EncodedDataset, blackbox: &BlackBox, cap: usize) -> Self {
        let n = data.len();
        if n == 0 || cap == 0 {
            return FallbackPool { rows: Vec::new(), classes: Vec::new() };
        }
        let stride = n.div_ceil(cap).max(1);
        let idx: Vec<usize> = (0..n).step_by(stride).collect();
        let (px, _) = data.subset(&idx);
        let classes = blackbox.predict(&px);
        let rows = (0..px.rows()).map(|r| px.row_slice(r).to_vec()).collect();
        FallbackPool { rows, classes }
    }
}

/// The feasible-counterfactual model: VAE generator + frozen black box +
/// causal constraints + immutable mask.
#[derive(Debug, Clone)]
pub struct FeasibleCfModel {
    vae: Cvae,
    blackbox: BlackBox,
    /// Frozen multiplicity ensemble backing the robust validity modes
    /// (see [`RobustMode`]). `None` reproduces the paper exactly. A
    /// training-time artifact: excluded from
    /// [`export_servable`](Self::export_servable) — serving needs only
    /// the trained generator and primary black box.
    ensemble: Option<EnsembleBlackBox>,
    constraints: Vec<Constraint>,
    mask: ImmutableMask,
    config: FeasibleCfConfig,
    pub(crate) fallback_pool: FallbackPool,
}

impl FeasibleCfModel {
    /// Creates an untrained model over an encoded dataset.
    ///
    /// `blackbox` should already be trained (the paper trains it first and
    /// freezes it); `constraints` are the active feasibility constraints
    /// for the configured [`ConstraintMode`].
    pub fn new(
        data: &EncodedDataset,
        blackbox: BlackBox,
        constraints: Vec<Constraint>,
        config: FeasibleCfConfig,
    ) -> Self {
        Self::new_with_explain(
            data,
            blackbox,
            constraints,
            config,
            &ExplainConfig::default(),
        )
    }

    /// Like [`new`](Self::new) with explicit generation-side knobs —
    /// currently the FACE fallback-pool cap, which a memory-pressured
    /// server tunes down (see [`ExplainConfig`]).
    pub fn new_with_explain(
        data: &EncodedDataset,
        blackbox: BlackBox,
        constraints: Vec<Constraint>,
        config: FeasibleCfConfig,
        explain: &ExplainConfig,
    ) -> Self {
        assert_eq!(
            blackbox.input_dim(),
            data.width(),
            "black box width must match the encoded data"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Decoder emits logits; sigmoid is applied explicitly so the BCE
        // reconstruction anchor (see CfLossWeights::recon_bce) can work on
        // the pre-activation values.
        let mut vae = Cvae::new_with_output(
            data.width(),
            config.latent_dim,
            config.dropout,
            Activation::Identity,
            &mut rng,
        );
        // The paper applies 30 % dropout to every layer; through the
        // 12-unit encoder trunk that much input noise makes the posterior
        // collapse to the prior and the generator degenerate to one
        // prototype per class (no per-individual counterfactuals, no
        // latent manifold). We keep Table II's dropout on the decoder and
        // disable it on the encoder — the minimal deviation that preserves
        // the architecture while keeping the latent code informative.
        vae.encoder.keep_prob = 1.0;
        let mask = if config.mask_immutable {
            ImmutableMask::from_schema(&data.schema, &data.encoding)
        } else {
            ImmutableMask::all_mutable(data.width())
        };
        let fallback_pool =
            FallbackPool::build(data, &blackbox, explain.fallback_pool_cap);
        FeasibleCfModel {
            vae,
            blackbox,
            ensemble: None,
            constraints,
            mask,
            config,
            fallback_pool,
        }
    }

    /// Fallible [`new_with_explain`](Self::new_with_explain): rejects an
    /// invalid [`ExplainConfig`] (e.g. a zero fallback-pool cap, which
    /// silently disables the degradation ladder's last rung) with a typed
    /// [`CfxError::Config`] instead of constructing a model that cannot
    /// honour its recovery contract.
    pub fn try_new_with_explain(
        data: &EncodedDataset,
        blackbox: BlackBox,
        constraints: Vec<Constraint>,
        config: FeasibleCfConfig,
        explain: &ExplainConfig,
    ) -> Result<Self, CfxError> {
        explain.validate()?;
        Ok(Self::new_with_explain(data, blackbox, constraints, config, explain))
    }

    /// Attaches a trained multiplicity ensemble, enabling the robust
    /// validity modes ([`RobustMode::Mean`] / [`RobustMode::WorstCase`]).
    /// The ensemble is frozen, exactly like the primary black box; the
    /// primary still defines input/desired classes and reported validity,
    /// so Table IV semantics and the degradation ladder are unchanged —
    /// only the training hinge switches to the ensemble.
    ///
    /// Panics if the ensemble's input width differs from the black box's.
    pub fn with_ensemble(mut self, ensemble: EnsembleBlackBox) -> Self {
        assert_eq!(
            ensemble.input_dim(),
            self.blackbox.input_dim(),
            "ensemble width must match the primary black box"
        );
        self.ensemble = Some(ensemble);
        self
    }

    /// The attached multiplicity ensemble, if any.
    pub fn ensemble(&self) -> Option<&EnsembleBlackBox> {
        self.ensemble.as_ref()
    }

    /// Rebuilds the nearest-neighbor fallback pool from `data` at a new
    /// cap — used after importing weights (the pool's classes depend on
    /// the black box) and by servers shrinking resident memory.
    pub fn rebuild_fallback_pool(&mut self, data: &EncodedDataset, explain: &ExplainConfig) {
        self.fallback_pool =
            FallbackPool::build(data, &self.blackbox, explain.fallback_pool_cap);
    }

    /// Rows currently held by the fallback pool (for memory accounting).
    pub fn fallback_pool_len(&self) -> usize {
        self.fallback_pool.rows.len()
    }

    /// Builds the paper's constraints for a dataset/mode pair (§IV-E):
    /// unary on `age`/`lsat`, binary on `education⇒age`/`tier⇒lsat`.
    ///
    /// Errors with [`CfxError::Constraint`] when the dataset's constraint
    /// features cannot be resolved against `data`'s schema/encoding.
    pub fn paper_constraints(
        dataset: DatasetId,
        data: &EncodedDataset,
        mode: ConstraintMode,
        c1: f32,
        c2: f32,
    ) -> Result<Vec<Constraint>, CfxError> {
        match mode {
            ConstraintMode::Unary => Ok(vec![Constraint::unary(
                &data.schema,
                &data.encoding,
                dataset.unary_constraint_feature(),
            )?]),
            ConstraintMode::Binary => {
                let (cause, effect) = dataset.binary_constraint_features();
                Ok(vec![Constraint::binary(
                    &data.schema,
                    &data.encoding,
                    cause,
                    effect,
                    c1,
                    c2,
                )?])
            }
        }
    }

    /// Trains the VAE on `x` (encoded training rows); the black box stays
    /// frozen. Returns the per-epoch loss history plus the watchdog's
    /// recovery record.
    ///
    /// Epochs are class-balanced: both flip directions (0→1 recourse and
    /// 1→0) appear equally often, with the minority direction oversampled.
    /// Without this, on skewed benchmarks like Law School (≈80 % positive)
    /// the dominant direction swamps the hinge term and the generator
    /// never learns the recourse flips the evaluation asks for.
    pub fn fit(&mut self, x: &Tensor) -> TrainReport {
        self.fit_with(x, |_, _| {})
    }

    /// Like [`fit`](Self::fit), invoking `on_epoch(epoch_index, stats)`
    /// after every epoch — the hook for early stopping, logging, or
    /// validation monitoring (pair it with
    /// [`validation_stats`](Self::validation_stats)).
    pub fn fit_with(
        &mut self,
        x: &Tensor,
        on_epoch: impl FnMut(usize, &EpochStats),
    ) -> TrainReport {
        self.fit_with_watchdog(x, &WatchdogConfig::default(), on_epoch)
    }

    /// The watchdog-supervised training loop (see `DESIGN.md`, "Failure
    /// model & recovery").
    ///
    /// Each completed epoch that improves on the best total loss is
    /// snapshotted (via [`cfx_tensor::serialize`]). When an epoch trips a
    /// fault — non-finite loss, non-finite gradients, or divergence past
    /// `watchdog.divergence_factor × best` — the epoch's partial updates
    /// are discarded: the weights roll back to the snapshot, the learning
    /// rate backs off by `watchdog.lr_backoff`, the data-order RNG is
    /// reseeded, the optimizer moments reset, and the same epoch is
    /// retried. After `watchdog.max_retries` rollbacks training stops at
    /// the snapshot with [`TrainStatus::Exhausted`].
    pub fn fit_with_watchdog(
        &mut self,
        x: &Tensor,
        watchdog: &WatchdogConfig,
        on_epoch: impl FnMut(usize, &EpochStats),
    ) -> TrainReport {
        self.fit_with_checkpoints(
            x,
            watchdog,
            &CheckpointConfig::disabled(),
            on_epoch,
        )
        .expect("disabled checkpointing cannot fail")
    }

    /// [`fit_with_watchdog`](Self::fit_with_watchdog) with durable state:
    /// when `ckpt` names a directory, the full training state — VAE
    /// parameters, best snapshot, Adam moments + step count, RNG stream
    /// state, and epoch/watchdog metadata — is checkpointed every
    /// `ckpt.every_epochs` completed epochs (and after every watchdog
    /// rollback), crash-safely.
    ///
    /// With `ckpt.resume`, the newest intact checkpoint is restored
    /// before training, and the run continues **bitwise-identically** to
    /// one that was never interrupted: same final weights, same
    /// [`TrainReport`]. Corrupt checkpoint files are quarantined and the
    /// next older one is used. `on_epoch` fires only for epochs trained
    /// in *this* call, not for restored history.
    ///
    /// `ckpt.epoch_budget` pauses the run ([`TrainStatus::Paused`], with
    /// a forced checkpoint) after that many epochs complete in this call.
    pub fn fit_with_checkpoints(
        &mut self,
        x: &Tensor,
        watchdog: &WatchdogConfig,
        ckpt: &CheckpointConfig,
        mut on_epoch: impl FnMut(usize, &EpochStats),
    ) -> Result<TrainReport, CfxError> {
        let n = x.rows();
        assert!(n > 0, "cannot fit on an empty dataset");
        let cfg = self.config.clone();
        let mut report = TrainReport {
            history: Vec::with_capacity(cfg.epochs),
            events: Vec::new(),
            retries: 0,
            status: TrainStatus::Completed,
        };
        if cfg.epochs == 0 {
            return Ok(report);
        }
        let _fit_span =
            cfx_obs::span!("fit", epochs = cfg.epochs, rows = n, seed = cfg.seed);
        let mut lr = cfg.learning_rate;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF17);
        let mut opt = Adam::with_lr(lr);
        let preds = self.blackbox.predict(x);
        let group0: Vec<usize> =
            (0..n).filter(|&r| preds[r] == 0).collect();
        let group1: Vec<usize> =
            (0..n).filter(|&r| preds[r] == 1).collect();

        let mut best_total = f32::INFINITY;
        let mut best_snapshot = self.vae.export_params();
        let mut epoch = 0usize;

        let mut manager = ckpt.manager()?;
        if let Some(mgr) = manager.as_mut() {
            if ckpt.resume {
                if let Some((_, c)) = mgr.load_latest()? {
                    self.restore_fit_state(
                        &c,
                        &mut report,
                        &mut epoch,
                        &mut lr,
                        &mut best_total,
                        &mut best_snapshot,
                        &mut opt,
                        &mut rng,
                    )?;
                    cfx_obs::event!(
                        "fit_resumed",
                        epoch = epoch,
                        retries = report.retries,
                        lr = lr,
                    );
                }
            }
        }
        let every = ckpt.every_epochs.max(1);
        let mut epochs_this_call = 0usize;

        // One tape reused across every batch of every epoch: reset()
        // returns all buffers to the pool, so steady-state steps allocate
        // nothing fresh.
        let mut tape = Tape::new();
        while epoch < cfg.epochs {
            let order = balanced_order(&group0, &group1, n, &mut rng);
            // KL annealing: ramp the KL weight over the first half of
            // training (the standard cure for posterior collapse — with a
            // full-strength KL from step one, the narrow Table II encoder
            // gives up on the latent code and the generator degenerates to
            // one prototype per class).
            let anneal =
                ((epoch as f32 + 1.0) / (cfg.epochs as f32 / 2.0)).min(1.0);
            let mut sums = [0.0f32; 6];
            let mut grad_norm_sum = 0.0f32;
            let mut batches = 0usize;
            let mut fault = None;
            for chunk in order.chunks(cfg.batch_size) {
                let xb = x.gather_rows_pooled(chunk);
                let step =
                    self.train_batch(&xb, &mut tape, &mut opt, &mut rng, anneal);
                xb.recycle();
                match step {
                    Ok((stats, grad_norm)) => {
                        sums[0] += stats.total;
                        sums[1] += stats.validity;
                        sums[2] += stats.proximity;
                        sums[3] += stats.feasibility;
                        sums[4] += stats.sparsity;
                        sums[5] += stats.kl;
                        grad_norm_sum += grad_norm;
                        batches += 1;
                    }
                    Err(f) => {
                        fault = Some(f);
                        break;
                    }
                }
            }
            let b = batches.max(1) as f32;
            let stats = EpochStats {
                total: sums[0] / b,
                validity: sums[1] / b,
                proximity: sums[2] / b,
                feasibility: sums[3] / b,
                sparsity: sums[4] / b,
                kl: sums[5] / b,
            };
            if fault.is_none()
                && stats.total > watchdog.divergence_floor
                && stats.total > watchdog.divergence_factor * best_total
            {
                fault = Some(FaultDetected::Diverged);
            }

            if let Some(f) = fault {
                // Roll back: the faulted epoch's partial optimizer steps
                // are discarded wholesale.
                self.vae.import_params(&best_snapshot);
                report.retries += 1;
                lr *= watchdog.lr_backoff;
                cfx_obs::warn!(
                    "watchdog_rollback",
                    epoch = epoch,
                    retry = report.retries,
                    fault = format!("{f:?}"),
                    lr = lr,
                );
                cfx_obs::metrics::counter("cfx_watchdog_rollbacks_total")
                    .inc(1);
                report.events.push(RecoveryEvent {
                    epoch,
                    retry: report.retries,
                    fault: f,
                    learning_rate: lr,
                });
                if report.retries > watchdog.max_retries {
                    report.status = TrainStatus::Exhausted;
                    cfx_obs::warn!(
                        "watchdog_exhausted",
                        epoch = epoch,
                        retries = report.retries,
                    );
                    return Ok(report);
                }
                // Fresh optimizer moments (the old ones averaged corrupt
                // gradients) and a decorrelated data order.
                opt = Adam::with_lr(lr);
                rng = StdRng::seed_from_u64(
                    cfg.seed
                        ^ 0xF17
                        ^ 0x9E37_79B9_7F4A_7C15u64
                            .wrapping_mul(report.retries as u64),
                );
                // Persist the rolled-back state so a crash during the
                // retry resumes from *after* the rollback, not before it
                // (same step number: the newest state for this epoch
                // count wins).
                if let Some(mgr) = manager.as_mut() {
                    let mut c = self.fit_state_checkpoint(
                        &report,
                        epoch,
                        lr,
                        best_total,
                        &best_snapshot,
                        &opt,
                        &rng,
                    );
                    // INFINITY: a rollback never displaces the best file.
                    mgr.save(epoch as u64, f32::INFINITY, &mut c)?;
                }
                continue; // retry the same epoch
            }

            on_epoch(epoch, &stats);
            cfx_obs::event!(
                "fit_epoch",
                epoch = epoch,
                total = stats.total,
                validity = stats.validity,
                proximity = stats.proximity,
                feasibility = stats.feasibility,
                sparsity = stats.sparsity,
                kl = stats.kl,
                lr = lr,
                grad_norm = grad_norm_sum / b,
                batches = batches,
            );
            if cfx_obs::ENABLED {
                use cfx_obs::metrics::{counter, gauge};
                gauge("cfx_train_loss_total").set(stats.total as f64);
                gauge("cfx_train_loss_validity").set(stats.validity as f64);
                gauge("cfx_train_loss_proximity").set(stats.proximity as f64);
                gauge("cfx_train_loss_feasibility")
                    .set(stats.feasibility as f64);
                gauge("cfx_train_loss_sparsity").set(stats.sparsity as f64);
                gauge("cfx_train_lr").set(lr as f64);
                counter("cfx_train_epochs_total").inc(1);
            }
            report.history.push(stats);
            if stats.total < best_total {
                best_total = stats.total;
                best_snapshot = self.vae.export_params();
            }
            epoch += 1;
            epochs_this_call += 1;
            let budget_hit = ckpt
                .epoch_budget
                .is_some_and(|b| epochs_this_call >= b)
                && epoch < cfg.epochs;
            if let Some(mgr) = manager.as_mut() {
                if epoch % every == 0 || epoch == cfg.epochs || budget_hit {
                    let mut c = self.fit_state_checkpoint(
                        &report,
                        epoch,
                        lr,
                        best_total,
                        &best_snapshot,
                        &opt,
                        &rng,
                    );
                    mgr.save(epoch as u64, stats.total, &mut c)?;
                    // Deterministic kill switch for the crash-consistency
                    // tests: always lands right after a durable save.
                    crash_point("epoch", epoch as u64);
                }
            }
            if budget_hit {
                report.status = TrainStatus::Paused;
                cfx_obs::event!(
                    "fit_paused",
                    epoch = epoch,
                    retries = report.retries,
                );
                return Ok(report);
            }
        }
        report.status = if report.retries > 0 {
            TrainStatus::Recovered
        } else {
            TrainStatus::Completed
        };
        cfx_obs::event!(
            "fit_done",
            epochs = report.history.len(),
            retries = report.retries,
            status = match report.status {
                TrainStatus::Recovered => "recovered",
                _ => "completed",
            },
        );
        Ok(report)
    }

    /// Serializes the complete mid-fit state into a checkpoint. Together
    /// with [`restore_fit_state`](Self::restore_fit_state) this defines
    /// the resume contract: params + optimizer + RNG + watchdog metadata
    /// travel as one unit, so a restored run replays the exact arithmetic
    /// of an uninterrupted one.
    #[allow(clippy::too_many_arguments)]
    fn fit_state_checkpoint(
        &self,
        report: &TrainReport,
        epoch: usize,
        lr: f32,
        best_total: f32,
        best_snapshot: &[Tensor],
        opt: &Adam,
        rng: &StdRng,
    ) -> Checkpoint {
        let mut c = Checkpoint::new();
        c.put_str("model", "FeasibleCfModel.fit");
        c.put_tensors("vae", &self.vae.export_params());
        c.put_tensors("best", best_snapshot);
        c.put_adam("adam", &opt.export_state());
        c.put_u64s("rng", &rng.state());
        c.put_u64s("meta.u64", &[epoch as u64, report.retries as u64]);
        c.put_f32s("meta.f32", &[lr, best_total]);
        let mut hist = Vec::with_capacity(report.history.len() * 6);
        for s in &report.history {
            hist.extend_from_slice(&[
                s.total,
                s.validity,
                s.proximity,
                s.feasibility,
                s.sparsity,
                s.kl,
            ]);
        }
        c.put_f32s("history", &hist);
        let mut ev_u = Vec::with_capacity(report.events.len() * 3);
        let mut ev_f = Vec::with_capacity(report.events.len());
        for e in &report.events {
            ev_u.extend_from_slice(&[
                e.epoch as u64,
                e.retry as u64,
                match e.fault {
                    FaultDetected::NonFiniteLoss => 0,
                    FaultDetected::NonFiniteGrad => 1,
                    FaultDetected::Diverged => 2,
                },
            ]);
            ev_f.push(e.learning_rate);
        }
        c.put_u64s("events.u64", &ev_u);
        c.put_f32s("events.f32", &ev_f);
        c
    }

    /// Restores mid-fit state from a checkpoint produced by
    /// [`fit_state_checkpoint`](Self::fit_state_checkpoint). Shape
    /// mismatches (a checkpoint from a different architecture) surface as
    /// [`CfxError::Corrupt`], never a panic or a silently misloaded model.
    #[allow(clippy::too_many_arguments)]
    fn restore_fit_state(
        &mut self,
        c: &Checkpoint,
        report: &mut TrainReport,
        epoch: &mut usize,
        lr: &mut f32,
        best_total: &mut f32,
        best_snapshot: &mut Vec<Tensor>,
        opt: &mut Adam,
        rng: &mut StdRng,
    ) -> Result<(), CfxError> {
        self.vae.try_import_params(&c.tensors("vae")?)?;
        *best_snapshot = c.tensors("best")?;
        *opt = Adam::from_state(c.adam("adam")?);
        let rs = c.u64s("rng")?;
        let rs: [u64; 4] = rs.as_slice().try_into().map_err(|_| {
            CfxError::corrupt(format!("rng section has {} words", rs.len()))
        })?;
        *rng = StdRng::from_state(rs);
        let meta_u = c.u64s("meta.u64")?;
        let meta_f = c.f32s("meta.f32")?;
        if meta_u.len() != 2 || meta_f.len() != 2 {
            return Err(CfxError::corrupt("fit metadata sections malformed"));
        }
        *epoch = meta_u[0] as usize;
        report.retries = meta_u[1] as usize;
        *lr = meta_f[0];
        *best_total = meta_f[1];
        let hist = c.f32s("history")?;
        if hist.len() % 6 != 0 {
            return Err(CfxError::corrupt("history section malformed"));
        }
        report.history = hist
            .chunks_exact(6)
            .map(|s| EpochStats {
                total: s[0],
                validity: s[1],
                proximity: s[2],
                feasibility: s[3],
                sparsity: s[4],
                kl: s[5],
            })
            .collect();
        let ev_u = c.u64s("events.u64")?;
        let ev_f = c.f32s("events.f32")?;
        if ev_u.len() % 3 != 0 || ev_u.len() / 3 != ev_f.len() {
            return Err(CfxError::corrupt("event sections malformed"));
        }
        report.events = ev_u
            .chunks_exact(3)
            .zip(&ev_f)
            .map(|(u, &learning_rate)| {
                Ok(RecoveryEvent {
                    epoch: u[0] as usize,
                    retry: u[1] as usize,
                    fault: match u[2] {
                        0 => FaultDetected::NonFiniteLoss,
                        1 => FaultDetected::NonFiniteGrad,
                        2 => FaultDetected::Diverged,
                        k => {
                            return Err(CfxError::corrupt(format!(
                                "unknown fault code {k}"
                            )))
                        }
                    },
                    learning_rate,
                })
            })
            .collect::<Result<_, CfxError>>()?;
        Ok(())
    }

    /// Generation-quality snapshot on a held-out set: the fraction of
    /// counterfactuals that flip to the desired class and the fraction
    /// satisfying every constraint. Use inside a
    /// [`fit_with`](Self::fit_with) callback for validation-based early
    /// stopping.
    pub fn validation_stats(&self, x_val: &Tensor) -> (f32, f32) {
        let batch = self.explain_batch(x_val);
        (batch.validity_rate(), batch.feasibility_rate())
    }

    /// One optimizer step, guarded: a non-finite loss aborts *before*
    /// backward, non-finite gradients abort before the weight update, so a
    /// detected fault never contaminates the parameters.
    fn train_batch(
        &mut self,
        xb: &Tensor,
        tape: &mut Tape,
        opt: &mut Adam,
        rng: &mut StdRng,
        kl_anneal: f32,
    ) -> Result<(EpochStats, f32), FaultDetected> {
        let n = xb.rows();
        // Desired class = opposite of the black box's current prediction.
        let preds = self.blackbox.predict(xb);
        let desired: Vec<f32> =
            preds.iter().map(|&p| 1.0 - p as f32).collect();
        let cond = Tensor::from_vec(n, 1, desired.clone());
        let desired_pm1 = Tensor::from_vec(
            n,
            1,
            desired.iter().map(|&d| 2.0 * d - 1.0).collect(),
        );
        let eps = randn_tensor(n, self.vae.latent_dim(), rng);

        tape.reset();
        let xv = tape.leaf_copy(xb);
        let mut pv = Vec::new();
        let out = self.vae.forward(tape, xv, &cond, &eps, &mut pv, true, rng);
        let probs = tape.sigmoid(out.recon);
        let x_cf = self.mask.apply_tape(tape, xv, probs);
        let weights = {
            let mut w = self.config.weights;
            w.kl *= kl_anneal;
            w
        };
        let parts = match (self.config.robust, &self.ensemble) {
            (RobustMode::Off, _) => {
                let logits = self.blackbox.forward_tape(tape, x_cf);
                cf_loss(
                    tape,
                    xv,
                    x_cf,
                    logits,
                    &desired_pm1,
                    out.mu,
                    out.logvar,
                    &self.constraints,
                    &weights,
                    Some(out.recon),
                )
            }
            (mode, Some(ensemble)) => {
                // Members are evaluated and reduced in index order —
                // part of the bitwise-determinism contract pinned by
                // tests/robust_prop.rs.
                let member_logits =
                    ensemble.forward_members_tape(tape, x_cf);
                if cfx_obs::ENABLED {
                    cfx_obs::metrics::counter("cfx_robust_batches_total")
                        .inc(1);
                }
                cf_loss_robust(
                    tape,
                    xv,
                    x_cf,
                    &member_logits,
                    mode,
                    &desired_pm1,
                    out.mu,
                    out.logvar,
                    &self.constraints,
                    &weights,
                    Some(out.recon),
                )
            }
            (mode, None) => panic!(
                "FeasibleCfConfig.robust = {mode:?} but no ensemble is \
                 attached; call with_ensemble() before fit()"
            ),
        };
        let stats = EpochStats {
            total: tape.value(parts.total).item(),
            validity: tape.value(parts.validity).item(),
            proximity: tape.value(parts.proximity).item(),
            feasibility: tape.value(parts.feasibility).item(),
            sparsity: tape.value(parts.sparsity).item(),
            kl: tape.value(parts.kl).item(),
        };
        if !stats.total.is_finite() {
            return Err(FaultDetected::NonFiniteLoss);
        }
        tape.backward(parts.total);
        if !guard::all_finite(&tape.grads_of(&pv)) {
            return Err(FaultDetected::NonFiniteGrad);
        }
        let grad_norm = tape.clip_grads(&pv, 5.0);
        let grads = tape.grads_of(&pv);
        opt.step_refs(&mut self.vae, &grads);
        Ok((stats, grad_norm))
    }

    /// Generates one counterfactual per row of `x`, deterministically
    /// (posterior-mean decode): encode under the desired class, decode,
    /// restore immutable columns.
    pub fn counterfactuals(&self, x: &Tensor) -> Tensor {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xCF);
        self.counterfactuals_with_noise(x, 0.0, &mut rng)
    }

    /// Stochastic variant: perturbs the latent code by `noise_scale`
    /// standard deviations ("we perturbed the output of the encoder to the
    /// decoder", §III-C).
    pub fn counterfactuals_with_noise(
        &self,
        x: &Tensor,
        noise_scale: f32,
        rng: &mut StdRng,
    ) -> Tensor {
        let cond = self.desired_cond(x);
        // `generate` returns a pool-origin buffer (it ends in a pooled
        // `Mlp::predict`): squash it in place and hand it back so repeated
        // resampling rounds reuse the same allocations.
        let mut recon = self.vae.generate(x, &cond, noise_scale, rng);
        recon.map_inplace(stable_sigmoid);
        let cf = self.mask.apply(x, &recon);
        recon.recycle();
        cf
    }

    /// The `(n, 1)` desired-class column for a batch (opposite of the
    /// black box's prediction).
    pub fn desired_cond(&self, x: &Tensor) -> Tensor {
        let preds = self.blackbox.predict(x);
        Tensor::from_vec(
            x.rows(),
            1,
            preds.iter().map(|&p| 1.0 - p as f32).collect(),
        )
    }

    /// Posterior means of `x` under the desired class — the latent points
    /// used for the manifold analysis (Fig. 5/6).
    pub fn latent_mu(&self, x: &Tensor) -> Tensor {
        let cond = self.desired_cond(x);
        let (mu, _) = self.vae.encode(x, &cond);
        mu
    }

    /// The frozen classifier.
    pub fn blackbox(&self) -> &BlackBox {
        &self.blackbox
    }

    /// Active constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The generator network.
    pub fn vae(&self) -> &Cvae {
        &self.vae
    }

    /// Mutable access to the generator network. Exists so fault-injection
    /// tests can cripple the decoder and exercise the nearest-neighbor
    /// fallback; production code should never need it.
    pub fn vae_mut(&mut self) -> &mut Cvae {
        &mut self.vae
    }

    /// Immutable-column mask in effect.
    pub fn mask(&self) -> &ImmutableMask {
        &self.mask
    }

    /// Training configuration.
    pub fn config(&self) -> &FeasibleCfConfig {
        &self.config
    }

    /// Writes everything a serving process needs to reconstruct this
    /// trained model — generator and classifier weights plus a format
    /// marker and the encoded width — into `ckpt` under `serve.*`
    /// sections. The scaffold (constraints, mask, config) is rebuilt by
    /// the loader from the dataset spec; only learned state travels in
    /// the file.
    pub fn export_servable(&self, ckpt: &mut Checkpoint) {
        ckpt.put_str("serve.format", SERVABLE_FORMAT);
        ckpt.put_u64s("serve.width", &[self.blackbox.input_dim() as u64]);
        self.vae.export_to(ckpt, "serve.vae");
        self.blackbox.export_to(ckpt, "serve.bb");
    }

    /// [`export_servable`](Self::export_servable) plus the reference
    /// traffic moments the serving daemon's live drift monitor compares
    /// incoming rows against: per encoded column, the training-set mean,
    /// variance and smoothed [`cfx_obs::sketch::BINS`]-bin distribution
    /// over `[0, 1]`, as a `width × (2 + BINS)` table under
    /// [`SERVABLE_REFSTATS`]. The section is optional on import — a
    /// checkpoint without it still loads, and the server falls back to
    /// recomputing the stats from its boot dataset.
    pub fn export_servable_full(
        &self,
        data: &EncodedDataset,
        ckpt: &mut Checkpoint,
    ) {
        use cfx_obs::sketch::{FeatureStats, BINS};
        self.export_servable(ckpt);
        let width = data.width();
        let x = &data.x;
        let mut stats = vec![FeatureStats::default(); width];
        for r in 0..x.rows() {
            for (c, &v) in x.row_slice(r).iter().enumerate() {
                stats[c].push(v as f64);
            }
        }
        let mut table = Vec::with_capacity(width * (2 + BINS));
        for s in &stats {
            table.push(s.moments.mean() as f32);
            table.push(s.moments.variance() as f32);
            for p in s.sketch.proportions() {
                table.push(p as f32);
            }
        }
        ckpt.put_f32_table(SERVABLE_REFSTATS, width, 2 + BINS, &table);
    }

    /// Restores the learned state written by
    /// [`export_servable`](Self::export_servable) into this scaffold
    /// model and rebuilds the fallback pool (its classes depend on the
    /// imported classifier). A missing marker, a width mismatch or any
    /// shape mismatch is a [`CfxError::Corrupt`] and leaves no silently
    /// half-loaded model: the importer validates before touching weights.
    pub fn import_servable(
        &mut self,
        data: &EncodedDataset,
        explain: &ExplainConfig,
        ckpt: &Checkpoint,
    ) -> Result<(), CfxError> {
        let format = ckpt.str_section("serve.format")?;
        if format != SERVABLE_FORMAT {
            return Err(CfxError::corrupt(format!(
                "servable format {format:?}, expected {SERVABLE_FORMAT:?}"
            )));
        }
        let width = ckpt.u64s("serve.width")?;
        if width != [self.blackbox.input_dim() as u64] {
            return Err(CfxError::corrupt(format!(
                "servable width {width:?} does not match model width {}",
                self.blackbox.input_dim()
            )));
        }
        self.vae.import_from(ckpt, "serve.vae")?;
        self.blackbox.import_from(ckpt, "serve.bb")?;
        self.rebuild_fallback_pool(data, explain);
        Ok(())
    }
}

/// Format marker of [`FeasibleCfModel::export_servable`] checkpoints.
pub const SERVABLE_FORMAT: &str = "cfx-servable-v1";

/// Checkpoint table name of the reference traffic moments written by
/// [`FeasibleCfModel::export_servable_full`].
pub const SERVABLE_REFSTATS: &str = "serve.refstats";

/// Builds a length-`n` epoch order drawing alternately from the two
/// prediction groups (shuffled, minority oversampled by cycling). Falls
/// back to a plain shuffle when either group is empty.
fn balanced_order(
    group0: &[usize],
    group1: &[usize],
    n: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    if group0.is_empty() || group1.is_empty() {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        return order;
    }
    let mut g0 = group0.to_vec();
    let mut g1 = group1.to_vec();
    g0.shuffle(rng);
    g1.shuffle(rng);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                g0[(i / 2) % g0.len()]
            } else {
                g1[(i / 2) % g1.len()]
            }
        })
        .collect()
}

impl Module for FeasibleCfModel {
    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        self.vae.visit_params(f);
    }
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.vae.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_models::BlackBoxConfig;

    fn small_setup() -> (EncodedDataset, BlackBox) {
        let raw = DatasetId::Adult.generate_clean(1200, 3);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 10, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        (data, bb)
    }

    fn quick_config(mode: ConstraintMode) -> FeasibleCfConfig {
        FeasibleCfConfig::paper(DatasetId::Adult, mode)
            .with_epochs(6)
            .with_batch_size(256)
    }

    #[test]
    fn fit_reduces_total_loss() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        )
        .unwrap();
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        let report = model.fit(&data.x);
        let first = report.first_total().unwrap();
        let last = report.last_total().unwrap();
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert!(last.is_finite());
        assert_eq!(report.status, TrainStatus::Completed);
        assert!(report.events.is_empty());
    }

    #[test]
    fn zero_epochs_returns_empty_report() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary).with_epochs(0);
        let mut model = FeasibleCfModel::new(&data, bb, vec![], cfg);
        let report = model.fit(&data.x.slice_rows(0, 64));
        assert!(report.history.is_empty());
        assert_eq!(report.first_total(), None);
        assert_eq!(report.last_total(), None);
        assert_eq!(report.retries, 0);
        assert_eq!(report.status, TrainStatus::Completed);
    }

    #[test]
    fn counterfactuals_keep_immutable_columns() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        )
        .unwrap();
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        model.fit(&data.x.slice_rows(0, 512));
        let x = data.x.slice_rows(0, 20);
        let cf = model.counterfactuals(&x);
        let frozen = data.encoding.immutable_columns(&data.schema);
        for r in 0..x.rows() {
            for &c in &frozen {
                assert_eq!(
                    x[(r, c)],
                    cf[(r, c)],
                    "immutable column {c} changed in row {r}"
                );
            }
        }
    }

    #[test]
    fn training_yields_feasible_and_valid_counterfactuals() {
        // Needs a few thousand rows to converge (the untrained model is
        // not a meaningful baseline: a random decoder emits near-constant
        // ~0.5 outputs that trivially satisfy "age does not decrease").
        let raw = DatasetId::Adult.generate_clean(4_000, 3);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 12, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        let cfg = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary)
            .with_step_budget_of(DatasetId::Adult, 4_000);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        )
        .unwrap();
        let mut trained = FeasibleCfModel::new(&data, bb, constraints, cfg);
        trained.fit(&data.x);

        // Evaluate in the recourse direction (negative-class inputs).
        let preds = trained.blackbox().predict(&data.x);
        let denied: Vec<usize> =
            (0..data.len()).filter(|&r| preds[r] == 0).take(150).collect();
        let x = data.x.gather_rows(&denied);
        let batch = trained.explain_batch(&x);
        assert!(
            batch.feasibility_rate() > 0.7,
            "trained feasibility too low: {}",
            batch.feasibility_rate()
        );
        assert!(
            batch.validity_rate() > 0.6,
            "trained validity too low: {}",
            batch.validity_rate()
        );
    }

    #[test]
    fn fit_with_invokes_callback_every_epoch() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary).with_epochs(3);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        )
        .unwrap();
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        let mut seen = Vec::new();
        let report = model.fit_with(&data.x.slice_rows(0, 512), |e, s| {
            seen.push((e, s.total));
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[2].0, 2);
        for ((_, t), h) in seen.iter().zip(&report.history) {
            assert_eq!(*t, h.total);
        }
        // Validation snapshot runs end-to-end.
        let (v, f) = model.validation_stats(&data.x.slice_rows(0, 50));
        assert!((0.0..=1.0).contains(&v));
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn desired_cond_flips_predictions() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Unary);
        let model = FeasibleCfModel::new(&data, bb, vec![], cfg);
        let x = data.x.slice_rows(0, 50);
        let preds = model.blackbox().predict(&x);
        let cond = model.desired_cond(&x);
        for (p, c) in preds.iter().zip(cond.as_slice()) {
            assert_eq!(*c, 1.0 - *p as f32);
        }
    }

    #[test]
    fn latent_mu_has_latent_width() {
        let (data, bb) = small_setup();
        let cfg = quick_config(ConstraintMode::Binary);
        let model = FeasibleCfModel::new(&data, bb, vec![], cfg.clone());
        let mu = model.latent_mu(&data.x.slice_rows(0, 10));
        assert_eq!(mu.shape(), (10, cfg.latent_dim));
    }
}
