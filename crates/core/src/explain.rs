//! Explanation objects: per-instance counterfactuals with validity and
//! feasibility verdicts, latent-manifold extraction (Fig. 5/6), and the
//! human-readable before/after rendering of Table V.

use crate::config::GenRecoveryConfig;
use crate::model::FeasibleCfModel;
use cfx_data::{csv::format_value, Encoding, Schema, Value};
use cfx_manifold::pairwise_sq_dists;
use cfx_tensor::{CfxError, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// How a counterfactual was obtained (the graceful-degradation ladder of
/// `explain_batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The deterministic posterior-mean decode succeeded directly.
    FirstShot,
    /// Accepted on the n-th latent resampling attempt (1-based).
    Resampled(u32),
    /// The decoder never produced a usable row; this is the
    /// nearest-neighbor (FACE-style) training-pool fallback.
    Fallback,
}

/// Aggregate provenance tally of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProvenanceCounts {
    /// Counterfactuals from the deterministic first decode.
    pub first_shot: usize,
    /// Counterfactuals recovered by latent resampling.
    pub resampled: usize,
    /// Counterfactuals served from the nearest-neighbor fallback pool.
    pub fallback: usize,
}

/// One explained instance.
#[derive(Debug, Clone)]
pub struct Counterfactual {
    /// Original encoded row.
    pub input: Vec<f32>,
    /// Counterfactual encoded row.
    pub cf: Vec<f32>,
    /// Black-box class of the input.
    pub input_class: u8,
    /// Desired (opposite) class.
    pub desired_class: u8,
    /// Black-box class of the counterfactual.
    pub cf_class: u8,
    /// Whether `cf_class == desired_class` (the validity predicate).
    pub valid: bool,
    /// Whether every active constraint holds (the feasibility predicate).
    pub feasible: bool,
    /// How this counterfactual was produced.
    pub provenance: Provenance,
}

/// A batch of explanations plus aggregate rates.
#[derive(Debug, Clone)]
pub struct ExplanationBatch {
    /// Per-instance explanations.
    pub examples: Vec<Counterfactual>,
}

impl ExplanationBatch {
    /// Fraction of valid counterfactuals (×100 = the paper's Validity %).
    pub fn validity_rate(&self) -> f32 {
        rate(&self.examples, |e| e.valid)
    }

    /// Fraction of feasible counterfactuals (×100 = Feasibility score %).
    pub fn feasibility_rate(&self) -> f32 {
        rate(&self.examples, |e| e.feasible)
    }

    /// Fraction both valid and feasible.
    pub fn valid_and_feasible_rate(&self) -> f32 {
        rate(&self.examples, |e| e.valid && e.feasible)
    }

    /// Counterfactual rows as a tensor (for metric computation).
    pub fn cf_tensor(&self) -> Tensor {
        let rows: Vec<Vec<f32>> =
            self.examples.iter().map(|e| e.cf.clone()).collect();
        Tensor::from_rows(&rows)
    }

    /// Input rows as a tensor.
    pub fn input_tensor(&self) -> Tensor {
        let rows: Vec<Vec<f32>> =
            self.examples.iter().map(|e| e.input.clone()).collect();
        Tensor::from_rows(&rows)
    }

    /// Tally of how the batch's counterfactuals were produced — nonzero
    /// `resampled`/`fallback` counts make recovery overhead visible in
    /// benchmark output.
    pub fn provenance_counts(&self) -> ProvenanceCounts {
        let mut counts = ProvenanceCounts::default();
        for e in &self.examples {
            match e.provenance {
                Provenance::FirstShot => counts.first_shot += 1,
                Provenance::Resampled(_) => counts.resampled += 1,
                Provenance::Fallback => counts.fallback += 1,
            }
        }
        counts
    }
}

fn rate(examples: &[Counterfactual], pred: impl Fn(&Counterfactual) -> bool) -> f32 {
    if examples.is_empty() {
        return 0.0;
    }
    examples.iter().filter(|e| pred(e)).count() as f32 / examples.len() as f32
}

impl FeasibleCfModel {
    /// Explains every row of `x`: generates a counterfactual, classifies
    /// it, and checks the active constraints, with graceful degradation
    /// under default [`GenRecoveryConfig`] budgets (see
    /// [`explain_batch_with`](Self::explain_batch_with)).
    pub fn explain_batch(&self, x: &Tensor) -> ExplanationBatch {
        self.explain_batch_with(x, &GenRecoveryConfig::default())
    }

    /// The degradation ladder behind [`explain_batch`](Self::explain_batch):
    ///
    /// 1. **First shot** — deterministic posterior-mean decode.
    /// 2. **Resampling** — rows whose counterfactual is non-finite, or
    ///    neither valid nor feasible, are re-decoded with perturbed
    ///    latents up to `recovery.resample_attempts` times (fixed seeds,
    ///    so the result is deterministic).
    /// 3. **Fallback** — whatever still fails gets the nearest
    ///    desired-class training-pool row (FACE-style nearest-neighbor
    ///    search), with immutable columns restored from the input. When
    ///    the pool has no row of the desired class the input itself is
    ///    returned — a degenerate but finite and panic-free answer.
    ///
    /// Every sample therefore always receives a finite counterfactual;
    /// [`Counterfactual::provenance`] records which rung produced it.
    ///
    /// Panics on an invalid `recovery` (see
    /// [`GenRecoveryConfig::validate`]) — the fallible entry points
    /// ([`explain_batch_deadline`](Self::explain_batch_deadline) and the
    /// serving layer) surface the same condition as
    /// [`CfxError::Config`] instead.
    pub fn explain_batch_with(
        &self,
        x: &Tensor,
        recovery: &GenRecoveryConfig,
    ) -> ExplanationBatch {
        self.explain_rungs(x, recovery, None, 0).expect(
            "explain without a deadline can only fail on an invalid \
             GenRecoveryConfig",
        )
    }

    /// Deadline-bounded [`explain_batch_with`](Self::explain_batch_with):
    /// the degradation ladder is cut short once `deadline` is spent
    /// instead of silently burning time the caller no longer has.
    ///
    /// - A zero budget, or a first decode that alone exceeds the budget,
    ///   returns [`CfxError::Timeout`] — the caller (e.g. the serving
    ///   daemon's `504` path) learns *that* and *by how much* it missed.
    /// - Once the budget runs out mid-ladder, remaining resample rungs
    ///   are skipped and still-broken rows jump straight to the cheap
    ///   nearest-neighbor fallback, so every returned batch is complete
    ///   and finite. The cut is observable (`cfx_explain_deadline_cut_total`).
    ///
    /// With the same inputs and a budget large enough that nothing is
    /// cut, the result is bitwise identical to
    /// [`explain_batch_with`](Self::explain_batch_with).
    pub fn explain_batch_deadline(
        &self,
        x: &Tensor,
        recovery: &GenRecoveryConfig,
        deadline: Duration,
    ) -> Result<ExplanationBatch, CfxError> {
        self.explain_rungs(x, recovery, Some(deadline), 0)
    }

    /// [`explain_batch_deadline`](Self::explain_batch_deadline) on a
    /// named RNG stream: `stream` is folded into the seed of every
    /// recovery-resampling attempt, so callers that partition work —
    /// the serving daemon's worker pool derives `stream` from the
    /// request rows' content fingerprint — get resampling noise that is
    /// (a) decorrelated across distinct streams and (b) a pure function
    /// of the stream id, never of which thread, worker, or batch the
    /// job landed in. `stream == 0` is the historical stream:
    /// bitwise-identical to
    /// [`explain_batch_deadline`](Self::explain_batch_deadline).
    ///
    /// The deterministic first-shot decode ignores the stream entirely;
    /// only the rung-2 perturbation noise is stream-keyed.
    pub fn explain_batch_deadline_stream(
        &self,
        x: &Tensor,
        recovery: &GenRecoveryConfig,
        deadline: Duration,
        stream: u64,
    ) -> Result<ExplanationBatch, CfxError> {
        self.explain_rungs(x, recovery, Some(deadline), stream)
    }

    fn explain_rungs(
        &self,
        x: &Tensor,
        recovery: &GenRecoveryConfig,
        budget: Option<Duration>,
        stream: u64,
    ) -> Result<ExplanationBatch, CfxError> {
        // Reject bad recovery knobs before any work: a negative or
        // non-finite noise scale would corrupt every resample rung while
        // looking like an honest retry (satellite of the robustness PR).
        recovery.validate()?;
        let start = Instant::now();
        let over = |b: &Duration| start.elapsed() >= *b;
        if let Some(b) = &budget {
            if b.is_zero() {
                return Err(CfxError::timeout("explain_batch admission", 0));
            }
        }
        let timer = cfx_obs::Timer::start();
        let _span = cfx_obs::span!("explain_batch", rows = x.rows());
        let cf = self.counterfactuals(x);
        let input_classes = self.blackbox().predict(x);
        let cf_classes = self.blackbox().predict(&cf);
        let mut examples: Vec<Counterfactual> = (0..x.rows())
            .map(|r| {
                let xr = x.row_slice(r).to_vec();
                let cr = cf.row_slice(r).to_vec();
                let desired = 1 - input_classes[r];
                let feasible =
                    self.constraints().iter().all(|c| c.check(&xr, &cr));
                Counterfactual {
                    valid: cf_classes[r] == desired,
                    feasible,
                    input: xr,
                    cf: cr,
                    input_class: input_classes[r],
                    desired_class: desired,
                    cf_class: cf_classes[r],
                    provenance: Provenance::FirstShot,
                }
            })
            .collect();

        // A first decode that alone blew the budget: the caller's client
        // is already gone; surface the miss as a typed error instead of
        // continuing to spend compute on an unwanted answer.
        if let Some(b) = &budget {
            if over(b) {
                return Err(CfxError::timeout(
                    "explain_batch first shot",
                    b.as_millis() as u64,
                ));
            }
        }

        let needs_help = |e: &Counterfactual| {
            !e.cf.iter().all(|v| v.is_finite()) || !(e.valid && e.feasible)
        };
        let mut pending: Vec<usize> =
            (0..examples.len()).filter(|&r| needs_help(&examples[r])).collect();
        // Stage hook: when a serving worker has bound a request trace to
        // this thread, the record below (like every event in this
        // function) carries the trace id, so per-request ladder
        // progression is reconstructable from the JSONL log.
        cfx_obs::event!(
            "explain_rung",
            rung = "first_shot",
            rows = examples.len(),
            pending = pending.len(),
        );

        // Rung 2: latent resampling on the still-failing rows only.
        for attempt in 1..=recovery.resample_attempts {
            if pending.is_empty() {
                break;
            }
            // Budget spent mid-ladder: skip the remaining (expensive)
            // resample rungs and let still-broken rows take the cheap
            // nearest-neighbor fallback below. Observable, not silent.
            if budget.as_ref().is_some_and(over) {
                if cfx_obs::ENABLED {
                    cfx_obs::event!(
                        "explain_deadline_cut",
                        attempt = attempt,
                        pending = pending.len(),
                    );
                    cfx_obs::metrics::counter("cfx_explain_deadline_cut_total")
                        .inc(1);
                }
                break;
            }
            let xb = x.gather_rows_pooled(&pending);
            // Stream 0 must reproduce the historical seeds exactly, so
            // the stream id enters by plain XOR (identity at 0).
            let mut rng = StdRng::seed_from_u64(
                self.config().seed ^ 0x5EED ^ attempt as u64 ^ stream,
            );
            let cf_try = self.counterfactuals_with_noise(
                &xb,
                recovery.noise_scale,
                &mut rng,
            );
            xb.recycle();
            let try_classes = self.blackbox().predict(&cf_try);
            let mut still = Vec::with_capacity(pending.len());
            for (i, &r) in pending.iter().enumerate() {
                let cr = cf_try.row_slice(i);
                let finite = cr.iter().all(|v| v.is_finite());
                let valid = try_classes[i] == examples[r].desired_class;
                let feasible = self
                    .constraints()
                    .iter()
                    .all(|c| c.check(&examples[r].input, cr));
                if finite && valid && feasible {
                    examples[r].cf = cr.to_vec();
                    examples[r].cf_class = try_classes[i];
                    examples[r].valid = valid;
                    examples[r].feasible = feasible;
                    examples[r].provenance =
                        Provenance::Resampled(attempt as u32);
                } else {
                    still.push(r);
                }
            }
            cfx_obs::event!(
                "explain_rung",
                rung = "resample",
                attempt = attempt,
                recovered = pending.len() - still.len(),
                pending = still.len(),
            );
            pending = still;
        }

        // Rung 3: nearest-neighbor fallback. Only rows that are *broken*
        // (non-finite, or invalid) fall through — a valid-but-infeasible
        // first shot is a better answer than a copied training row.
        let fallback: Vec<usize> = pending
            .into_iter()
            .filter(|&r| {
                !examples[r].cf.iter().all(|v| v.is_finite())
                    || !examples[r].valid
            })
            .collect();
        if !fallback.is_empty() {
            cfx_obs::event!(
                "explain_rung",
                rung = "fallback",
                rows = fallback.len(),
            );
            self.fallback_fill(x, &fallback, &mut examples);
        }
        let batch = ExplanationBatch { examples };
        if cfx_obs::ENABLED {
            let counts = batch.provenance_counts();
            let rows = batch.examples.len();
            let dur_ns = timer.elapsed_ns();
            let ns_per_cf = dur_ns / rows.max(1) as u64;
            cfx_obs::event!(
                "explain_batch",
                rows = rows,
                first_shot = counts.first_shot,
                resampled = counts.resampled,
                fallback = counts.fallback,
                dur_ns = dur_ns,
                ns_per_cf = ns_per_cf,
            );
            use cfx_obs::metrics::{counter, histogram};
            counter("cfx_explain_rows_total").inc(rows as u64);
            counter("cfx_explain_first_shot_total").inc(counts.first_shot as u64);
            counter("cfx_explain_resampled_total").inc(counts.resampled as u64);
            counter("cfx_explain_fallback_total").inc(counts.fallback as u64);
            // Per-counterfactual latency, bucketed 10µs .. 1s.
            histogram(
                "cfx_explain_cf_latency_ns",
                &[1e4, 1e5, 1e6, 1e7, 1e8, 1e9],
            )
            .observe(ns_per_cf as f64);
        }
        Ok(batch)
    }

    /// Overwrites `examples[r]` for each `r` in `rows` with the nearest
    /// desired-class pool row (immutable columns restored), re-classified
    /// and re-checked.
    fn fallback_fill(
        &self,
        x: &Tensor,
        rows: &[usize],
        examples: &mut [Counterfactual],
    ) {
        let pool = &self.fallback_pool;
        // One distance matrix over [queries ++ pool]; query i vs pool j
        // lives at (i, nq + j).
        let mut points: Vec<Vec<f32>> =
            rows.iter().map(|&r| examples[r].input.clone()).collect();
        points.extend(pool.rows.iter().cloned());
        let nq = rows.len();
        let total = points.len();
        let dists = pairwise_sq_dists(&points);
        let candidates: Vec<Vec<f32>> = rows
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let desired = examples[r].desired_class;
                let mut best: Option<(f32, usize)> = None;
                for j in 0..pool.rows.len() {
                    if pool.classes[j] != desired {
                        continue;
                    }
                    let d = dists[i * total + nq + j];
                    if best.map_or(true, |(bd, _)| d < bd) {
                        best = Some((d, j));
                    }
                }
                match best {
                    Some((_, j)) => pool.rows[j].clone(),
                    // Degenerate fallback-of-fallback: echo the input.
                    None => examples[r].input.clone(),
                }
            })
            .collect();
        // Restore immutable columns in one masked batch, then re-verify.
        let xb = x.gather_rows(rows);
        let cand = Tensor::from_rows(&candidates);
        let cf = self.mask().apply(&xb, &cand);
        let classes = self.blackbox().predict(&cf);
        for (i, &r) in rows.iter().enumerate() {
            let cr = cf.row_slice(i).to_vec();
            let feasible = self
                .constraints()
                .iter()
                .all(|c| c.check(&examples[r].input, &cr));
            examples[r].valid = classes[i] == examples[r].desired_class;
            examples[r].feasible = feasible;
            examples[r].cf = cr;
            examples[r].cf_class = classes[i];
            examples[r].provenance = Provenance::Fallback;
        }
    }

    /// Latent points + feasibility labels for the manifold figures:
    /// encodes each input under its desired class and labels the decoded
    /// counterfactual 1 (feasible) / 0 (infeasible), exactly the
    /// procedure of §IV-E's manifold extraction.
    pub fn manifold_points(&self, x: &Tensor) -> (Tensor, Vec<u8>) {
        let latents = self.latent_mu(x);
        let batch = self.explain_batch(x);
        let labels = batch
            .examples
            .iter()
            .map(|e| e.feasible as u8)
            .collect();
        (latents, labels)
    }
}

/// Renders a Table-V style before/after comparison of one explanation.
///
/// Rows where the counterfactual differs from the input are marked with
/// `*` (the paper marks them in red).
pub fn format_comparison(
    schema: &Schema,
    encoding: &Encoding,
    example: &Counterfactual,
) -> String {
    let x_raw = encoding.decode_row(schema, &example.input);
    let cf_raw = encoding.decode_row(schema, &example.cf);
    let mut out = String::new();
    let name_w = schema
        .features
        .iter()
        .map(|f| f.name.len())
        .max()
        .unwrap_or(8)
        .max("Features".len());
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>14}  {:>14}",
        "Features", "x_true", "x_pred"
    );
    for ((f, xv), cv) in schema.features.iter().zip(&x_raw).zip(&cf_raw) {
        let changed = !values_equal(xv, cv);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>14}  {:>14}{}",
            f.name,
            format_value(&f.kind, xv),
            format_value(&f.kind, cv),
            if changed { " *" } else { "" },
        );
    }
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>14}  {:>14}",
        schema.target,
        class_name(schema, example.input_class),
        class_name(schema, example.cf_class),
    );
    out
}

fn class_name(schema: &Schema, class: u8) -> &str {
    if class == 1 {
        &schema.positive_class
    } else {
        &schema.negative_class
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => (x - y).abs() < 0.5,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConstraintMode, FeasibleCfConfig};
    use cfx_data::{DatasetId, EncodedDataset};
    use cfx_models::{BlackBox, BlackBoxConfig};

    fn trained_model() -> (EncodedDataset, FeasibleCfModel) {
        let raw = DatasetId::Adult.generate_clean(900, 11);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 8, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        let cfg = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary)
            .with_epochs(4)
            .with_batch_size(256);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        )
        .unwrap();
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        model.fit(&data.x);
        (data, model)
    }

    #[test]
    fn explanations_cover_every_row_with_consistent_flags() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 60);
        let batch = model.explain_batch(&x);
        assert_eq!(batch.examples.len(), 60);
        for e in &batch.examples {
            assert_eq!(e.desired_class, 1 - e.input_class);
            assert_eq!(e.valid, e.cf_class == e.desired_class);
        }
        // Rates are consistent with flags.
        let v = batch.examples.iter().filter(|e| e.valid).count() as f32 / 60.0;
        assert!((batch.validity_rate() - v).abs() < 1e-6);
        assert!(batch.valid_and_feasible_rate() <= batch.validity_rate() + 1e-6);
        assert!(batch.valid_and_feasible_rate() <= batch.feasibility_rate() + 1e-6);
    }

    #[test]
    fn manifold_points_align_with_explanations() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 40);
        let (latents, labels) = model.manifold_points(&x);
        assert_eq!(latents.rows(), 40);
        assert_eq!(labels.len(), 40);
        let batch = model.explain_batch(&x);
        for (l, e) in labels.iter().zip(&batch.examples) {
            assert_eq!(*l, e.feasible as u8);
        }
    }

    #[test]
    fn format_comparison_is_table_shaped() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 5);
        let batch = model.explain_batch(&x);
        let text = format_comparison(&data.schema, &data.encoding, &batch.examples[0]);
        assert!(text.contains("Features"));
        assert!(text.contains("x_true"));
        assert!(text.contains("x_pred"));
        assert!(text.contains("age"));
        // one line per feature + header + target row
        assert_eq!(text.lines().count(), data.schema.num_features() + 2);
    }

    #[test]
    fn provenance_counts_cover_the_batch() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 30);
        let batch = model.explain_batch(&x);
        let counts = batch.provenance_counts();
        assert_eq!(counts.first_shot + counts.resampled + counts.fallback, 30);
        // Whatever the rung, every sample gets a finite counterfactual.
        for e in &batch.examples {
            assert!(e.cf.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn tensors_round_trip_from_batch() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 8);
        let batch = model.explain_batch(&x);
        assert_eq!(batch.input_tensor().shape(), (8, data.width()));
        assert_eq!(batch.cf_tensor().shape(), (8, data.width()));
        assert_eq!(batch.input_tensor().row_slice(3), x.row_slice(3));
    }
}
