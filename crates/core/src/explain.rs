//! Explanation objects: per-instance counterfactuals with validity and
//! feasibility verdicts, latent-manifold extraction (Fig. 5/6), and the
//! human-readable before/after rendering of Table V.

use crate::model::FeasibleCfModel;
use cfx_data::{csv::format_value, Encoding, Schema, Value};
use cfx_tensor::Tensor;
use std::fmt::Write as _;

/// One explained instance.
#[derive(Debug, Clone)]
pub struct Counterfactual {
    /// Original encoded row.
    pub input: Vec<f32>,
    /// Counterfactual encoded row.
    pub cf: Vec<f32>,
    /// Black-box class of the input.
    pub input_class: u8,
    /// Desired (opposite) class.
    pub desired_class: u8,
    /// Black-box class of the counterfactual.
    pub cf_class: u8,
    /// Whether `cf_class == desired_class` (the validity predicate).
    pub valid: bool,
    /// Whether every active constraint holds (the feasibility predicate).
    pub feasible: bool,
}

/// A batch of explanations plus aggregate rates.
#[derive(Debug, Clone)]
pub struct ExplanationBatch {
    /// Per-instance explanations.
    pub examples: Vec<Counterfactual>,
}

impl ExplanationBatch {
    /// Fraction of valid counterfactuals (×100 = the paper's Validity %).
    pub fn validity_rate(&self) -> f32 {
        rate(&self.examples, |e| e.valid)
    }

    /// Fraction of feasible counterfactuals (×100 = Feasibility score %).
    pub fn feasibility_rate(&self) -> f32 {
        rate(&self.examples, |e| e.feasible)
    }

    /// Fraction both valid and feasible.
    pub fn valid_and_feasible_rate(&self) -> f32 {
        rate(&self.examples, |e| e.valid && e.feasible)
    }

    /// Counterfactual rows as a tensor (for metric computation).
    pub fn cf_tensor(&self) -> Tensor {
        let rows: Vec<Vec<f32>> =
            self.examples.iter().map(|e| e.cf.clone()).collect();
        Tensor::from_rows(&rows)
    }

    /// Input rows as a tensor.
    pub fn input_tensor(&self) -> Tensor {
        let rows: Vec<Vec<f32>> =
            self.examples.iter().map(|e| e.input.clone()).collect();
        Tensor::from_rows(&rows)
    }
}

fn rate(examples: &[Counterfactual], pred: impl Fn(&Counterfactual) -> bool) -> f32 {
    if examples.is_empty() {
        return 0.0;
    }
    examples.iter().filter(|e| pred(e)).count() as f32 / examples.len() as f32
}

impl FeasibleCfModel {
    /// Explains every row of `x`: generates a counterfactual, classifies
    /// it, and checks the active constraints.
    pub fn explain_batch(&self, x: &Tensor) -> ExplanationBatch {
        let cf = self.counterfactuals(x);
        let input_classes = self.blackbox().predict(x);
        let cf_classes = self.blackbox().predict(&cf);
        let examples = (0..x.rows())
            .map(|r| {
                let xr = x.row_slice(r).to_vec();
                let cr = cf.row_slice(r).to_vec();
                let desired = 1 - input_classes[r];
                let feasible =
                    self.constraints().iter().all(|c| c.check(&xr, &cr));
                Counterfactual {
                    valid: cf_classes[r] == desired,
                    feasible,
                    input: xr,
                    cf: cr,
                    input_class: input_classes[r],
                    desired_class: desired,
                    cf_class: cf_classes[r],
                }
            })
            .collect();
        ExplanationBatch { examples }
    }

    /// Latent points + feasibility labels for the manifold figures:
    /// encodes each input under its desired class and labels the decoded
    /// counterfactual 1 (feasible) / 0 (infeasible), exactly the
    /// procedure of §IV-E's manifold extraction.
    pub fn manifold_points(&self, x: &Tensor) -> (Tensor, Vec<u8>) {
        let latents = self.latent_mu(x);
        let batch = self.explain_batch(x);
        let labels = batch
            .examples
            .iter()
            .map(|e| e.feasible as u8)
            .collect();
        (latents, labels)
    }
}

/// Renders a Table-V style before/after comparison of one explanation.
///
/// Rows where the counterfactual differs from the input are marked with
/// `*` (the paper marks them in red).
pub fn format_comparison(
    schema: &Schema,
    encoding: &Encoding,
    example: &Counterfactual,
) -> String {
    let x_raw = encoding.decode_row(schema, &example.input);
    let cf_raw = encoding.decode_row(schema, &example.cf);
    let mut out = String::new();
    let name_w = schema
        .features
        .iter()
        .map(|f| f.name.len())
        .max()
        .unwrap_or(8)
        .max("Features".len());
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>14}  {:>14}",
        "Features", "x_true", "x_pred"
    );
    for ((f, xv), cv) in schema.features.iter().zip(&x_raw).zip(&cf_raw) {
        let changed = !values_equal(xv, cv);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>14}  {:>14}{}",
            f.name,
            format_value(&f.kind, xv),
            format_value(&f.kind, cv),
            if changed { " *" } else { "" },
        );
    }
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>14}  {:>14}",
        schema.target,
        class_name(schema, example.input_class),
        class_name(schema, example.cf_class),
    );
    out
}

fn class_name(schema: &Schema, class: u8) -> &str {
    if class == 1 {
        &schema.positive_class
    } else {
        &schema.negative_class
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => (x - y).abs() < 0.5,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConstraintMode, FeasibleCfConfig};
    use cfx_data::{DatasetId, EncodedDataset};
    use cfx_models::{BlackBox, BlackBoxConfig};

    fn trained_model() -> (EncodedDataset, FeasibleCfModel) {
        let raw = DatasetId::Adult.generate_clean(900, 11);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 8, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        let cfg = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary)
            .with_epochs(4)
            .with_batch_size(256);
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult,
            &data,
            ConstraintMode::Unary,
            cfg.c1,
            cfg.c2,
        );
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        model.fit(&data.x);
        (data, model)
    }

    #[test]
    fn explanations_cover_every_row_with_consistent_flags() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 60);
        let batch = model.explain_batch(&x);
        assert_eq!(batch.examples.len(), 60);
        for e in &batch.examples {
            assert_eq!(e.desired_class, 1 - e.input_class);
            assert_eq!(e.valid, e.cf_class == e.desired_class);
        }
        // Rates are consistent with flags.
        let v = batch.examples.iter().filter(|e| e.valid).count() as f32 / 60.0;
        assert!((batch.validity_rate() - v).abs() < 1e-6);
        assert!(batch.valid_and_feasible_rate() <= batch.validity_rate() + 1e-6);
        assert!(batch.valid_and_feasible_rate() <= batch.feasibility_rate() + 1e-6);
    }

    #[test]
    fn manifold_points_align_with_explanations() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 40);
        let (latents, labels) = model.manifold_points(&x);
        assert_eq!(latents.rows(), 40);
        assert_eq!(labels.len(), 40);
        let batch = model.explain_batch(&x);
        for (l, e) in labels.iter().zip(&batch.examples) {
            assert_eq!(*l, e.feasible as u8);
        }
    }

    #[test]
    fn format_comparison_is_table_shaped() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 5);
        let batch = model.explain_batch(&x);
        let text = format_comparison(&data.schema, &data.encoding, &batch.examples[0]);
        assert!(text.contains("Features"));
        assert!(text.contains("x_true"));
        assert!(text.contains("x_pred"));
        assert!(text.contains("age"));
        // one line per feature + header + target row
        assert_eq!(text.lines().count(), data.schema.num_features() + 2);
    }

    #[test]
    fn tensors_round_trip_from_batch() {
        let (data, model) = trained_model();
        let x = data.x.slice_rows(0, 8);
        let batch = model.explain_batch(&x);
        assert_eq!(batch.input_tensor().shape(), (8, data.width()));
        assert_eq!(batch.cf_tensor().shape(), (8, data.width()));
        assert_eq!(batch.input_tensor().row_slice(3), x.row_slice(3));
    }
}
