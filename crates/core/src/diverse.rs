//! Diverse counterfactual sets.
//!
//! The paper's Figs. 2–3 reason about *several* counterfactual candidates
//! per individual — choose the sparsest feasible one from a dense region —
//! and cite DiCE [11] for the value of diversity. This module turns that
//! reasoning into an API: sample a pool of candidates from the VAE's
//! latent space ("we perturbed the output of the encoder to the decoder",
//! §III-C), filter/rank them by the paper's criteria, and select a
//! maximally diverse subset with a greedy max-min procedure.

use crate::explain::{Counterfactual, Provenance};
use crate::model::FeasibleCfModel;
use cfx_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Settings for diverse explanation.
#[derive(Debug, Clone, Copy)]
pub struct DiverseConfig {
    /// Candidates sampled from the latent space per instance.
    pub pool_size: usize,
    /// Counterfactuals returned per instance.
    pub k: usize,
    /// Latent noise scale (0 would collapse the pool to one decode).
    pub noise_scale: f32,
    /// Keep only valid candidates when enough exist.
    pub prefer_valid: bool,
    /// Keep only feasible candidates when enough exist.
    pub prefer_feasible: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DiverseConfig {
    fn default() -> Self {
        DiverseConfig {
            pool_size: 40,
            k: 4,
            noise_scale: 1.0,
            prefer_valid: true,
            prefer_feasible: true,
            seed: 0,
        }
    }
}

/// Which filter the candidate pool could sustain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterLevel {
    /// Enough valid **and** feasible candidates existed.
    ValidAndFeasible,
    /// Only the validity filter could be sustained.
    ValidOnly,
    /// Neither filter left `k` candidates; the raw pool was used.
    Unfiltered,
}

/// A diverse set of counterfactuals for one instance.
#[derive(Debug, Clone)]
pub struct DiverseSet {
    /// The selected counterfactuals (≤ `k`; empty only if the pool was).
    pub selected: Vec<Counterfactual>,
    /// Mean pairwise L1 distance between the selected counterfactuals —
    /// DiCE's diversity measure.
    pub diversity: f32,
    /// Size of the candidate pool after validity/feasibility filtering.
    pub pool_after_filter: usize,
    /// The filter the pool sustained.
    pub filter_level: FilterLevel,
}

impl FeasibleCfModel {
    /// Generates a diverse set of counterfactuals for a single instance
    /// (`x` must be a `(1, width)` row).
    ///
    /// Procedure: decode `pool_size` latent perturbations, classify and
    /// constraint-check each, filter to the preferred (valid/feasible)
    /// subset when it is large enough, then greedily pick `k` candidates
    /// maximizing the minimum pairwise distance (max-min dispersion).
    pub fn explain_diverse(&self, x: &Tensor, config: &DiverseConfig) -> DiverseSet {
        assert_eq!(x.rows(), 1, "explain_diverse expects a single row");
        assert!(config.pool_size > 0 && config.k > 0, "pool and k must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let input_class = self.blackbox().predict(x)[0];
        let desired = 1 - input_class;

        // Sample the candidate pool (first decode is the posterior mean).
        let mut pool: Vec<Counterfactual> = Vec::with_capacity(config.pool_size);
        for i in 0..config.pool_size {
            let noise = if i == 0 { 0.0 } else { config.noise_scale };
            let cf = self.counterfactuals_with_noise(x, noise, &mut rng);
            let cf_class = self.blackbox().predict(&cf)[0];
            let feasible = self
                .constraints()
                .iter()
                .all(|c| c.check(x.row_slice(0), cf.row_slice(0)));
            pool.push(Counterfactual {
                input: x.row_slice(0).to_vec(),
                cf: cf.row_slice(0).to_vec(),
                input_class,
                desired_class: desired,
                cf_class,
                valid: cf_class == desired,
                feasible,
                provenance: Provenance::FirstShot,
            });
        }

        // Prefer valid/feasible subsets when they can fill the request.
        let (filtered, filter_level): (Vec<Counterfactual>, FilterLevel) = {
            let strict: Vec<Counterfactual> = pool
                .iter()
                .filter(|c| {
                    (!config.prefer_valid || c.valid)
                        && (!config.prefer_feasible || c.feasible)
                })
                .cloned()
                .collect();
            if strict.len() >= config.k {
                (strict, FilterLevel::ValidAndFeasible)
            } else {
                let valid_only: Vec<Counterfactual> =
                    pool.iter().filter(|c| c.valid).cloned().collect();
                if config.prefer_valid && valid_only.len() >= config.k {
                    (valid_only, FilterLevel::ValidOnly)
                } else {
                    (pool, FilterLevel::Unfiltered)
                }
            }
        };
        let pool_after_filter = filtered.len();

        // Greedy max-min dispersion: start from the candidate closest to
        // the input (the paper's proximity preference), then repeatedly
        // add the candidate farthest from the current selection.
        let mut selected: Vec<Counterfactual> = Vec::with_capacity(config.k);
        if !filtered.is_empty() {
            let first = filtered
                .iter()
                .min_by(|a, b| {
                    l1(&a.cf, &a.input)
                        .partial_cmp(&l1(&b.cf, &b.input))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .cloned()
                .expect("nonempty");
            selected.push(first);
            while selected.len() < config.k.min(filtered.len()) {
                let next = filtered
                    .iter()
                    .filter(|c| {
                        !selected.iter().any(|s| s.cf == c.cf)
                    })
                    .max_by(|a, b| {
                        min_dist(a, &selected)
                            .partial_cmp(&min_dist(b, &selected))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .cloned();
                match next {
                    Some(c) => selected.push(c),
                    None => break, // pool exhausted (duplicates)
                }
            }
        }

        let diversity = mean_pairwise_l1(&selected);
        DiverseSet { selected, diversity, pool_after_filter, filter_level }
    }
}

fn l1(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
}

fn min_dist(c: &Counterfactual, selected: &[Counterfactual]) -> f32 {
    selected
        .iter()
        .map(|s| l1(&c.cf, &s.cf))
        .fold(f32::INFINITY, f32::min)
}

/// Mean pairwise L1 distance among a set of counterfactuals (0 for fewer
/// than two) — DiCE's diversity score.
pub fn mean_pairwise_l1(set: &[Counterfactual]) -> f32 {
    if set.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0;
    for i in 0..set.len() {
        for j in (i + 1)..set.len() {
            total += l1(&set[i].cf, &set[j].cf);
            pairs += 1;
        }
    }
    total / pairs as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConstraintMode, FeasibleCfConfig};
    use cfx_data::{DatasetId, EncodedDataset};
    use cfx_models::{BlackBox, BlackBoxConfig};

    fn trained() -> &'static (EncodedDataset, FeasibleCfModel) {
        static CACHE: std::sync::OnceLock<(EncodedDataset, FeasibleCfModel)> =
            std::sync::OnceLock::new();
        CACHE.get_or_init(trained_uncached)
    }

    fn trained_uncached() -> (EncodedDataset, FeasibleCfModel) {
        let raw = DatasetId::Adult.generate_clean(2_500, 19);
        let data = EncodedDataset::from_raw(&raw);
        let bb_cfg = BlackBoxConfig { epochs: 10, ..Default::default() };
        let mut bb = BlackBox::new(data.width(), &bb_cfg);
        bb.train(&data.x, &data.y, &bb_cfg);
        let cfg = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary)
            .with_step_budget_of(DatasetId::Adult, data.len());
        let constraints = FeasibleCfModel::paper_constraints(
            DatasetId::Adult, &data, ConstraintMode::Unary, cfg.c1, cfg.c2,
        )
        .unwrap();
        let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
        model.fit(&data.x);
        (data, model)
    }

    fn denied_row(data: &EncodedDataset, model: &FeasibleCfModel) -> Tensor {
        let preds = model.blackbox().predict(&data.x);
        let r = (0..data.len()).find(|&r| preds[r] == 0).expect("no denied row");
        data.x.slice_rows(r, 1)
    }

    #[test]
    fn diverse_set_has_k_distinct_members() {
        let (data, model) = trained();
        let x = denied_row(&data, &model);
        let set = model.explain_diverse(&x, &DiverseConfig::default());
        assert!(!set.selected.is_empty());
        assert!(set.selected.len() <= 4);
        for i in 0..set.selected.len() {
            for j in (i + 1)..set.selected.len() {
                assert_ne!(
                    set.selected[i].cf, set.selected[j].cf,
                    "duplicate counterfactuals selected"
                );
            }
        }
        if set.selected.len() >= 2 {
            assert!(set.diversity > 0.0);
        }
    }

    #[test]
    fn filtering_prefers_valid_and_feasible() {
        let (data, model) = trained();
        let x = denied_row(&data, &model);
        let set = model.explain_diverse(
            &x,
            &DiverseConfig { pool_size: 60, ..Default::default() },
        );
        // When the strict filter was sustained, every selected CF is
        // valid and feasible; otherwise at least report the degradation.
        match set.filter_level {
            FilterLevel::ValidAndFeasible => {
                assert!(set.selected.iter().all(|c| c.valid && c.feasible));
            }
            FilterLevel::ValidOnly => {
                assert!(set.selected.iter().all(|c| c.valid));
            }
            FilterLevel::Unfiltered => {}
        }
    }

    #[test]
    fn maxmin_selection_beats_first_k_on_diversity() {
        let (data, model) = trained();
        let x = denied_row(&data, &model);
        let cfg = DiverseConfig { pool_size: 40, k: 4, ..Default::default() };
        let set = model.explain_diverse(&x, &cfg);
        // Baseline: the first k pool members with the same filters.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut baseline = Vec::new();
        for i in 0..cfg.k {
            let noise = if i == 0 { 0.0 } else { cfg.noise_scale };
            let cf = model.counterfactuals_with_noise(&x, noise, &mut rng);
            baseline.push(Counterfactual {
                input: x.row_slice(0).to_vec(),
                cf: cf.row_slice(0).to_vec(),
                input_class: 0,
                desired_class: 1,
                cf_class: 1,
                valid: true,
                feasible: true,
                provenance: Provenance::FirstShot,
            });
        }
        let base_div = mean_pairwise_l1(&baseline);
        assert!(
            set.diversity >= base_div * 0.9,
            "max-min {} much worse than naive {}",
            set.diversity,
            base_div
        );
    }

    #[test]
    fn mean_pairwise_l1_arithmetic() {
        let mk = |v: Vec<f32>| Counterfactual {
            input: vec![0.0; v.len()],
            cf: v,
            input_class: 0,
            desired_class: 1,
            cf_class: 1,
            valid: true,
            feasible: true,
            provenance: Provenance::FirstShot,
        };
        let set = vec![mk(vec![0.0, 0.0]), mk(vec![1.0, 0.0]), mk(vec![0.0, 1.0])];
        // pairwise L1s: 1, 1, 2 → mean 4/3.
        assert!((mean_pairwise_l1(&set) - 4.0 / 3.0).abs() < 1e-6);
        assert_eq!(mean_pairwise_l1(&set[..1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "single row")]
    fn multi_row_input_rejected() {
        let (data, model) = trained();
        let x = data.x.slice_rows(0, 2);
        let _ = model.explain_diverse(&x, &DiverseConfig::default());
    }
}
