//! Latent-path exploration — the "exploration" of the paper's title.
//!
//! Beyond a single counterfactual, the latent space supports *paths*: the
//! straight line from an instance's latent code (under its own class) to
//! its counterfactual code (under the desired class), decoded step by
//! step. Each step is a progressively stronger intervention; the first
//! valid step is the gentlest change that flips the classifier, and the
//! feasibility flags along the way show where the path leaves the causal
//! constraints. This is the algorithmic form of Fig. 3's "walk toward the
//! dense feasible region".

use crate::explain::Counterfactual;
use crate::model::FeasibleCfModel;
use cfx_tensor::Tensor;

/// One decoded step of a latent path.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Interpolation coefficient in `[0, 1]` (0 = input side).
    pub alpha: f32,
    /// Decoded, immutability-restored point.
    pub point: Vec<f32>,
    /// Black-box class at this step.
    pub class: u8,
    /// Whether every active constraint holds vs. the original input.
    pub feasible: bool,
}

/// A decoded latent path from an instance toward its counterfactual.
#[derive(Debug, Clone)]
pub struct LatentPath {
    /// The steps, from `alpha = 0` to `alpha = 1`.
    pub steps: Vec<PathStep>,
    /// Class of the original instance.
    pub input_class: u8,
    /// Desired class.
    pub desired_class: u8,
}

impl LatentPath {
    /// The first step whose class equals the desired class (the gentlest
    /// flipping intervention), if any.
    pub fn first_valid(&self) -> Option<&PathStep> {
        self.steps.iter().find(|s| s.class == self.desired_class)
    }

    /// The first step that is both valid and feasible, if any.
    pub fn first_valid_feasible(&self) -> Option<&PathStep> {
        self.steps
            .iter()
            .find(|s| s.class == self.desired_class && s.feasible)
    }

    /// Fraction of steps satisfying the constraints.
    pub fn feasible_fraction(&self) -> f32 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().filter(|s| s.feasible).count() as f32
            / self.steps.len() as f32
    }

    /// Converts a step into a full [`Counterfactual`] record.
    pub fn step_as_counterfactual(
        &self,
        step: &PathStep,
        input: &[f32],
    ) -> Counterfactual {
        Counterfactual {
            input: input.to_vec(),
            cf: step.point.clone(),
            input_class: self.input_class,
            desired_class: self.desired_class,
            cf_class: step.class,
            valid: step.class == self.desired_class,
            feasible: step.feasible,
            provenance: crate::explain::Provenance::FirstShot,
        }
    }
}

impl FeasibleCfModel {
    /// Decodes the straight latent line from `x`'s code under its own
    /// class to its code under the desired class, in `steps + 1` points
    /// (`alpha = 0, 1/steps, …, 1`).
    ///
    /// # Panics
    /// Panics unless `x` is a single row and `steps ≥ 1`.
    pub fn latent_path(&self, x: &Tensor, steps: usize) -> LatentPath {
        assert_eq!(x.rows(), 1, "latent_path expects a single row");
        assert!(steps >= 1, "need at least one step");
        let input_class = self.blackbox().predict(x)[0];
        let desired_class = 1 - input_class;

        // Source code: encode under the *input* class (a reconstruction
        // code); target code: encode under the desired class (the
        // counterfactual code the generator would decode).
        let cond_src = Tensor::from_vec(1, 1, vec![input_class as f32]);
        let cond_dst = Tensor::from_vec(1, 1, vec![desired_class as f32]);
        let (z_src, _) = self.vae().encode(x, &cond_src);
        let (z_dst, _) = self.vae().encode(x, &cond_dst);

        let mut path_steps = Vec::with_capacity(steps + 1);
        for i in 0..=steps {
            let alpha = i as f32 / steps as f32;
            let z = z_src.zip(&z_dst, |a, b| (1.0 - alpha) * a + alpha * b);
            // Condition slides with alpha too: early steps decode mostly
            // "stay", late steps decode "flip".
            let cond = Tensor::from_vec(
                1,
                1,
                vec![(1.0 - alpha) * input_class as f32
                    + alpha * desired_class as f32],
            );
            let decoded = self
                .vae()
                .decode(&z, &cond)
                .map(cfx_tensor::stable_sigmoid);
            let point = self.mask().apply(x, &decoded);
            let class = self.blackbox().predict(&point)[0];
            let feasible = self
                .constraints()
                .iter()
                .all(|c| c.check(x.row_slice(0), point.row_slice(0)));
            path_steps.push(PathStep {
                alpha,
                point: point.row_slice(0).to_vec(),
                class,
                feasible,
            });
        }
        LatentPath { steps: path_steps, input_class, desired_class }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConstraintMode, FeasibleCfConfig};
    use cfx_data::{DatasetId, EncodedDataset};
    use cfx_models::{BlackBox, BlackBoxConfig};
    use std::sync::OnceLock;

    fn trained() -> &'static (EncodedDataset, FeasibleCfModel) {
        static CACHE: OnceLock<(EncodedDataset, FeasibleCfModel)> =
            OnceLock::new();
        CACHE.get_or_init(|| {
            let raw = DatasetId::Adult.generate_clean(3_000, 29);
            let data = EncodedDataset::from_raw(&raw);
            let bb_cfg = BlackBoxConfig { epochs: 10, ..Default::default() };
            let mut bb = BlackBox::new(data.width(), &bb_cfg);
            bb.train(&data.x, &data.y, &bb_cfg);
            let cfg =
                FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary)
                    .with_step_budget_of(DatasetId::Adult, data.len());
            let constraints = FeasibleCfModel::paper_constraints(
                DatasetId::Adult,
                &data,
                ConstraintMode::Unary,
                cfg.c1,
                cfg.c2,
            )
            .unwrap();
            let mut model = FeasibleCfModel::new(&data, bb, constraints, cfg);
            model.fit(&data.x);
            (data, model)
        })
    }

    fn denied_row(n: usize) -> Tensor {
        let (data, model) = trained();
        let preds = model.blackbox().predict(&data.x);
        let idx: Vec<usize> =
            (0..data.len()).filter(|&r| preds[r] == 0).collect();
        data.x.slice_rows(idx[n % idx.len()], 1)
    }

    #[test]
    fn path_has_expected_shape_and_endpoints() {
        let (_, model) = trained();
        let x = denied_row(0);
        let path = model.latent_path(&x, 10);
        assert_eq!(path.steps.len(), 11);
        assert_eq!(path.steps[0].alpha, 0.0);
        assert_eq!(path.steps[10].alpha, 1.0);
        assert_eq!(path.input_class, 0);
        assert_eq!(path.desired_class, 1);
        // The endpoint equals the model's standard counterfactual.
        let cf = model.counterfactuals(&x);
        for (a, b) in path.steps[10].point.iter().zip(cf.row_slice(0)) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn first_valid_is_no_later_than_the_endpoint_when_cf_flips() {
        let (_, model) = trained();
        for i in 0..5 {
            let x = denied_row(i);
            let path = model.latent_path(&x, 8);
            if path.steps.last().unwrap().class == path.desired_class {
                let first = path.first_valid().expect("endpoint flips");
                assert!(first.alpha <= 1.0);
            }
        }
    }

    #[test]
    fn feasible_fraction_bounded() {
        let (_, model) = trained();
        let x = denied_row(1);
        let path = model.latent_path(&x, 6);
        let f = path.feasible_fraction();
        assert!((0.0..=1.0).contains(&f));
        // Immutable columns never move along the path.
        let frozen = {
            let (data, _) = trained();
            data.encoding.immutable_columns(&data.schema)
        };
        for s in &path.steps {
            for &c in &frozen {
                assert_eq!(s.point[c], x[(0, c)]);
            }
        }
    }

    #[test]
    fn step_as_counterfactual_is_consistent() {
        let (_, model) = trained();
        let x = denied_row(2);
        let path = model.latent_path(&x, 4);
        let step = &path.steps[2];
        let cf = path.step_as_counterfactual(step, x.row_slice(0));
        assert_eq!(cf.valid, step.class == path.desired_class);
        assert_eq!(cf.feasible, step.feasible);
        assert_eq!(cf.cf, step.point);
    }

    #[test]
    #[should_panic(expected = "single row")]
    fn multi_row_rejected() {
        let (data, model) = trained();
        let _ = model.latent_path(&data.x.slice_rows(0, 2), 4);
    }
}
