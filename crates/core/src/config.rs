//! Hyper-parameter configuration, including the paper's Table III values.

use cfx_data::DatasetId;
use cfx_tensor::CfxError;

/// Which constraint model is being trained (§III-A): the paper fits one
/// model per constraint type and reports both rows in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintMode {
    /// Only the unary constraint (Eq. 1) in the loss.
    Unary,
    /// Only the binary constraint (Eq. 2) in the loss.
    Binary,
}

impl ConstraintMode {
    /// Table row label.
    pub fn label(&self) -> &'static str {
        match self {
            ConstraintMode::Unary => "Unary-const",
            ConstraintMode::Binary => "Binary-const",
        }
    }
}

/// How the validity term scores counterfactuals when the model carries an
/// ensemble of black boxes (model multiplicity; see the "Robustness under
/// model multiplicity & drift" section of `DESIGN.md`).
///
/// A CF that flips one trained classifier can be invalidated by a retrain
/// from another seed or data sample. The robust modes hinge the validity
/// loss against the ensemble instead of the single frozen primary, so the
/// generator learns CFs that survive plausible retrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RobustMode {
    /// Paper behaviour: hinge on the primary black box only. An attached
    /// ensemble is ignored by the loss (it can still be used for
    /// invalidation measurement).
    #[default]
    Off,
    /// Hinge on the mean ensemble logit — robust to the *average*
    /// retrain, cheapest signal, weakest guarantee.
    Mean,
    /// Hinge on the worst-case (least favourable) member logit per row —
    /// a CF only scores as valid once *every* member agrees, the
    /// strongest multiplicity guarantee.
    WorstCase,
}

impl RobustMode {
    /// Bench/report label.
    pub fn label(&self) -> &'static str {
        match self {
            RobustMode::Off => "plain",
            RobustMode::Mean => "robust-mean",
            RobustMode::WorstCase => "robust-worst",
        }
    }
}

/// Weights of the four-part loss (§III-C) plus the ELBO's KL regularizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfLossWeights {
    /// Hinge validity term of Eq. (3).
    pub validity: f32,
    /// L1 proximity term `d(x, x')` of Eq. (3).
    pub proximity: f32,
    /// Constraint penalty terms (`-min(0, x_cf − x)` / binary hinge).
    pub feasibility: f32,
    /// Sparsity term `g(x' − x)` (smooth-L0 + L1 mix).
    pub sparsity: f32,
    /// KL divergence of the VAE posterior (keeps the latent space a
    /// manifold; small so the CF terms dominate).
    pub kl: f32,
    /// Hinge margin for validity.
    pub hinge_margin: f32,
    /// ε of the smooth-L0 surrogate `d²/(d²+ε)`.
    pub sparsity_eps: f32,
    /// BCE-with-logits reconstruction anchor between the decoder logits
    /// and the input. The paper's Eq. (3) distance is the L1 term above;
    /// this anchor is the implementation device (also used by the CVAE of
    /// [5]) that keeps gradients alive once the sigmoid outputs saturate —
    /// without it the decoder collapses to a saturated class prototype.
    pub recon_bce: f32,
}

impl Default for CfLossWeights {
    fn default() -> Self {
        CfLossWeights {
            validity: 8.0,
            proximity: 3.0,
            feasibility: 10.0,
            sparsity: 0.2,
            kl: 0.05,
            hinge_margin: 0.5,
            sparsity_eps: 5e-2,
            recon_bce: 1.0,
        }
    }
}

/// Full training configuration for [`FeasibleCfModel`](crate::FeasibleCfModel).
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibleCfConfig {
    /// Constraint model variant.
    pub mode: ConstraintMode,
    /// SGD/Adam learning rate (Table III).
    pub learning_rate: f32,
    /// Mini-batch size (Table III: 2048 everywhere).
    pub batch_size: usize,
    /// Training epochs (Table III: 25 or 50).
    pub epochs: usize,
    /// Loss weights.
    pub weights: CfLossWeights,
    /// VAE latent dimensionality (paper: 10).
    pub latent_dim: usize,
    /// VAE dropout rate (paper: 0.30).
    pub dropout: f32,
    /// Binary-constraint penalty offset `c₁`.
    pub c1: f32,
    /// Binary-constraint penalty slope `c₂`.
    pub c2: f32,
    /// Whether immutable attributes are frozen during generation (§III-C,
    /// *Immutable Attributes*); the ablation bench turns this off.
    pub mask_immutable: bool,
    /// RNG seed.
    pub seed: u64,
    /// Robust-validity mode. [`RobustMode::Off`] reproduces the paper's
    /// single-model hinge exactly; the other modes require an ensemble
    /// attached via
    /// [`FeasibleCfModel::with_ensemble`](crate::FeasibleCfModel::with_ensemble).
    pub robust: RobustMode,
}

impl FeasibleCfConfig {
    /// The paper's Table III settings for a dataset/mode pair.
    ///
    /// Table III learning rates (0.1–0.2) are SGD-scale; we train with
    /// Adam (as the underlying CVAE of [5] does) and map them to the
    /// equivalent Adam rates by a factor of 10 — the epoch/batch
    /// structure is kept verbatim.
    pub fn paper(dataset: DatasetId, mode: ConstraintMode) -> Self {
        let (table_lr, epochs) = match (dataset, mode) {
            (DatasetId::Adult, ConstraintMode::Unary) => (0.2, 25),
            (DatasetId::Adult, ConstraintMode::Binary) => (0.2, 50),
            (DatasetId::KddCensus, ConstraintMode::Unary) => (0.1, 25),
            (DatasetId::KddCensus, ConstraintMode::Binary) => (0.1, 25),
            (DatasetId::LawSchool, ConstraintMode::Unary) => (0.2, 25),
            (DatasetId::LawSchool, ConstraintMode::Binary) => (0.2, 50),
        };
        FeasibleCfConfig {
            mode,
            learning_rate: table_lr / 10.0,
            batch_size: 2048,
            epochs,
            weights: CfLossWeights::default(),
            latent_dim: cfx_models::PAPER_LATENT_DIM,
            dropout: cfx_models::PAPER_DROPOUT,
            c1: 0.0,
            c2: 0.2,
            mask_immutable: true,
            seed: 0,
            robust: RobustMode::Off,
        }
    }

    /// The Table III learning rate as printed (before the Adam mapping).
    pub fn table3_learning_rate(dataset: DatasetId, mode: ConstraintMode) -> f32 {
        match (dataset, mode) {
            (DatasetId::KddCensus, _) => 0.1,
            _ => 0.2,
        }
    }

    /// Rescales the epoch count so the total number of optimizer steps on
    /// `n_train` rows matches what Table III's epochs×batches deliver at
    /// the paper's full dataset size. At paper size this is the identity;
    /// on scaled-down runs it prevents the CVAE from stopping long before
    /// convergence (the paper's schedule is defined in epochs, but the
    /// model's behaviour is governed by steps).
    pub fn with_step_budget_of(mut self, dataset: DatasetId, n_train: usize) -> Self {
        let paper_train =
            (dataset.paper_clean_size() as f64 * 0.8).round() as usize;
        // Floor the budget at 1 500 optimizer steps: Table III's schedule
        // assumes the real datasets' redundancy; the synthetic generators
        // need a few more passes to reach the same regime, and stopping a
        // CVAE mid-descent distorts every Table IV column at once.
        let paper_steps = (self.epochs
            * paper_train.div_ceil(self.batch_size).max(1))
        .max(1_500);
        let actual_batches = n_train.div_ceil(self.batch_size).max(1);
        self.epochs = paper_steps.div_ceil(actual_batches).max(self.epochs);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style epoch override (tests use few epochs).
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style batch-size override.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style robust-mode override.
    pub fn with_robust(mut self, robust: RobustMode) -> Self {
        self.robust = robust;
        self
    }
}

/// Divergence-watchdog settings for fault-tolerant training (see the
/// "Failure model & recovery" section of `DESIGN.md`).
///
/// The watchdog snapshots the best-so-far weights, detects non-finite
/// losses/gradients and runaway divergence, and on a fault rolls back to
/// the snapshot, backs the learning rate off and retries with a reseeded
/// RNG — up to `max_retries` times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Rollback/retry budget; once exhausted training stops at the best
    /// snapshot with [`TrainStatus::Exhausted`](crate::TrainStatus).
    pub max_retries: usize,
    /// Multiplicative learning-rate backoff applied per retry.
    pub lr_backoff: f32,
    /// An epoch's total loss above `divergence_factor × best_total` (and
    /// above `divergence_floor`) counts as divergence.
    pub divergence_factor: f32,
    /// Absolute floor below which the divergence test never fires — early
    /// noisy epochs legitimately bounce around small losses.
    pub divergence_floor: f32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            max_retries: 3,
            lr_backoff: 0.5,
            divergence_factor: 25.0,
            divergence_floor: 100.0,
        }
    }
}

impl WatchdogConfig {
    /// Builder-style retry-budget override.
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// Graceful-degradation settings for counterfactual generation
/// ([`FeasibleCfModel::explain_batch_with`](crate::FeasibleCfModel::explain_batch_with)).
///
/// Samples whose first-shot CF is invalid or infeasible are re-decoded
/// with perturbed latents up to `resample_attempts` times; whatever still
/// fails falls back to a nearest-neighbor CF from the training pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenRecoveryConfig {
    /// Per-sample latent resampling budget before the fallback engages.
    pub resample_attempts: usize,
    /// Scale of the latent noise used when resampling.
    pub noise_scale: f32,
}

impl Default for GenRecoveryConfig {
    fn default() -> Self {
        GenRecoveryConfig { resample_attempts: 4, noise_scale: 0.5 }
    }
}

impl GenRecoveryConfig {
    /// Builder-style resample-budget override.
    pub fn with_resample_attempts(mut self, attempts: usize) -> Self {
        self.resample_attempts = attempts;
        self
    }

    /// Rejects values that would silently corrupt the degradation ladder:
    /// a negative or non-finite `noise_scale` turns latent resampling
    /// into NaN/backwards perturbations that *look* like honest retries.
    /// (`resample_attempts == 0` stays legal — it means "skip straight to
    /// the fallback pool".) Checked at every `explain_batch*` entry.
    pub fn validate(&self) -> Result<(), CfxError> {
        if !self.noise_scale.is_finite() || self.noise_scale < 0.0 {
            return Err(CfxError::config(format!(
                "GenRecoveryConfig::noise_scale must be finite and >= 0, \
                 got {}",
                self.noise_scale
            )));
        }
        Ok(())
    }
}

/// Generation-side memory/latency knobs for
/// [`FeasibleCfModel`](crate::FeasibleCfModel), separate from the
/// training hyper-parameters of [`FeasibleCfConfig`].
///
/// The serving daemon tunes these under memory pressure; the defaults
/// reproduce the historical hard-coded behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplainConfig {
    /// Cap on the FACE-style nearest-neighbor fallback pool subsampled
    /// from the training rows at model construction. Larger pools give
    /// better fallback counterfactuals but cost O(pool²) distance work
    /// and O(pool × width) resident memory per model. The default (512)
    /// is the value that was previously hard-coded.
    pub fallback_pool_cap: usize,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig { fallback_pool_cap: 512 }
    }
}

impl ExplainConfig {
    /// Builder-style fallback-pool-cap override.
    pub fn with_fallback_pool_cap(mut self, cap: usize) -> Self {
        self.fallback_pool_cap = cap;
        self
    }

    /// Rejects knobs that would silently disable the degradation ladder:
    /// `fallback_pool_cap == 0` builds an *empty* FACE fallback pool, so
    /// rung 3 can never repair a row and every exhausted sample ships an
    /// invalid CF with no error. Checked by
    /// [`FeasibleCfModel::new_with_explain`](crate::FeasibleCfModel::new_with_explain).
    pub fn validate(&self) -> Result<(), CfxError> {
        if self.fallback_pool_cap == 0 {
            return Err(CfxError::config(
                "ExplainConfig::fallback_pool_cap must be > 0 \
                 (0 silently disables the FACE fallback rung)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_reproduced() {
        for (ds, mode, lr, epochs) in [
            (DatasetId::Adult, ConstraintMode::Unary, 0.2, 25),
            (DatasetId::Adult, ConstraintMode::Binary, 0.2, 50),
            (DatasetId::KddCensus, ConstraintMode::Unary, 0.1, 25),
            (DatasetId::KddCensus, ConstraintMode::Binary, 0.1, 25),
            (DatasetId::LawSchool, ConstraintMode::Unary, 0.2, 25),
            (DatasetId::LawSchool, ConstraintMode::Binary, 0.2, 50),
        ] {
            let cfg = FeasibleCfConfig::paper(ds, mode);
            assert_eq!(FeasibleCfConfig::table3_learning_rate(ds, mode), lr);
            assert_eq!(cfg.epochs, epochs);
            assert_eq!(cfg.batch_size, 2048);
            assert_eq!(cfg.latent_dim, 10);
            assert!((cfg.dropout - 0.30).abs() < 1e-6);
        }
    }

    #[test]
    fn builders_override() {
        let cfg = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary)
            .with_seed(9)
            .with_epochs(3)
            .with_batch_size(64);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.epochs, 3);
        assert_eq!(cfg.batch_size, 64);
    }

    #[test]
    fn mode_labels_match_table3() {
        assert_eq!(ConstraintMode::Unary.label(), "Unary-const");
        assert_eq!(ConstraintMode::Binary.label(), "Binary-const");
    }

    #[test]
    fn paper_config_defaults_to_plain_validity() {
        let cfg = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary);
        assert_eq!(cfg.robust, RobustMode::Off);
        let robust = cfg.with_robust(RobustMode::WorstCase);
        assert_eq!(robust.robust, RobustMode::WorstCase);
        assert_eq!(RobustMode::Off.label(), "plain");
        assert_eq!(RobustMode::Mean.label(), "robust-mean");
        assert_eq!(RobustMode::WorstCase.label(), "robust-worst");
    }

    #[test]
    fn explain_config_rejects_zero_pool_cap() {
        assert!(ExplainConfig::default().validate().is_ok());
        let err = ExplainConfig::default()
            .with_fallback_pool_cap(0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, CfxError::Config(_)), "got {err}");
        assert!(err.to_string().contains("fallback_pool_cap"));
    }

    #[test]
    fn recovery_config_rejects_bad_noise_scale() {
        assert!(GenRecoveryConfig::default().validate().is_ok());
        // Zero attempts is legal: skip straight to the fallback pool.
        assert!(GenRecoveryConfig::default()
            .with_resample_attempts(0)
            .validate()
            .is_ok());
        for bad in [-0.5, f32::NAN, f32::INFINITY] {
            let cfg = GenRecoveryConfig { noise_scale: bad, ..Default::default() };
            let err = cfg.validate().unwrap_err();
            assert!(matches!(err, CfxError::Config(_)), "got {err}");
        }
    }
}
