//! Causal feasibility constraints (§III-A).
//!
//! The paper avoids full causal graphs and instead uses two constraint
//! templates that domain knowledge can instantiate on any dataset:
//!
//! * **Unary** (Eq. 1): a feature may only increase,
//!   `x_cf ≥ x` — e.g. age, or a standardized test score.
//! * **Binary** (Eq. 2): an implication between a cause and an effect,
//!   `(cause↑ ⇒ effect↑) AND (cause= ⇒ effect≥)` — e.g. obtaining a
//!   higher degree forces age to increase.
//!
//! Each constraint provides two faces:
//!
//! 1. an exact boolean **check** on encoded rows (used by the feasibility
//!    score metric, §IV-D), where ordinal categoricals compare on their
//!    arg-max level;
//! 2. a differentiable **penalty** on the autodiff tape (used as the
//!    feasibility term of the training loss, §III-C): the paper's
//!    `-min(0, x_cf - x)` for unary — equivalently `relu(x - x_cf)` — and
//!    a hinge form of `(x₂ - c₁ - c₂·x₁)` for binary, with `c₁, c₂`
//!    "parameters selected from experimentation".

use cfx_data::{ColumnSpan, Encoding, FeatureKind, Schema};
use cfx_tensor::{CfxError, Tape, Tensor, Var};

/// How a feature is read as a scalar for constraint purposes.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureView {
    /// A numeric feature: the single encoded column, already in `[0, 1]`.
    Numeric {
        /// Its encoded column.
        column: usize,
    },
    /// An ordinal categorical: the one-hot block is collapsed to a level
    /// score in `[0, 1]` (level index / (k-1)); exact checks use arg-max,
    /// the differentiable view uses the dot product with level weights.
    Ordinal {
        /// The one-hot block.
        span: ColumnSpan,
    },
}

impl FeatureView {
    /// Resolves a feature name into a view.
    ///
    /// Errors with [`CfxError::Constraint`] if the name is unknown or the
    /// feature is binary / a non-ordinal categorical — constraints on
    /// those have no order to compare on.
    pub fn resolve(
        schema: &Schema,
        encoding: &Encoding,
        name: &str,
    ) -> Result<Self, CfxError> {
        let idx = schema
            .features
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| {
                CfxError::constraint(format!("unknown constraint feature {name:?}"))
            })?;
        let span = encoding.spans[idx];
        match &schema.features[idx].kind {
            FeatureKind::Numeric { .. } => {
                Ok(FeatureView::Numeric { column: span.start })
            }
            FeatureKind::Categorical { ordinal: true, .. } => {
                Ok(FeatureView::Ordinal { span })
            }
            other => Err(CfxError::constraint(format!(
                "constraint feature {name:?} must be numeric or ordinal, got {other:?}"
            ))),
        }
    }

    /// Exact scalar value of this view on one encoded row.
    pub fn value(&self, row: &[f32]) -> f32 {
        match self {
            FeatureView::Numeric { column } => row[*column],
            FeatureView::Ordinal { span } => {
                let block = &row[span.start..span.start + span.width];
                let best = block
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if span.width > 1 {
                    best as f32 / (span.width - 1) as f32
                } else {
                    0.0
                }
            }
        }
    }

    /// Differentiable `(n, 1)` view of a `(n, width)` encoded batch on the
    /// tape: the raw column for numerics, the soft level score
    /// `Σ pᵢ·(i/(k-1))` for ordinals.
    pub fn value_tape(&self, tape: &mut Tape, x: Var) -> Var {
        match self {
            FeatureView::Numeric { column } => tape.slice_cols(x, *column, 1),
            FeatureView::Ordinal { span } => {
                let block = tape.slice_cols(x, span.start, span.width);
                let denom = (span.width.max(2) - 1) as f32;
                let weights: Vec<f32> =
                    (0..span.width).map(|i| i as f32 / denom).collect();
                let w = tape.leaf(Tensor::from_vec(span.width, 1, weights));
                tape.matmul(block, w)
            }
        }
    }
}

/// Tolerance for the boolean checks: decoded continuous values carry
/// reconstruction noise, so "≥" is tested with a small slack, matching how
/// the evaluation scripts of [5]/[20] round before comparing.
pub const CHECK_EPS: f32 = 1e-4;

/// A causal feasibility constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Eq. (1): the feature may not decrease (`x_cf ≥ x`).
    UnaryIncrease {
        /// Constrained feature name.
        feature: String,
        /// Its resolved view.
        view: FeatureView,
    },
    /// Eq. (2): `(cause↑ ⇒ effect↑) AND (cause= ⇒ effect≥)`, with the
    /// penalty slope/offset `c₁, c₂` from experimentation (§III-C).
    BinaryImplication {
        /// Cause feature name (e.g. education).
        cause: String,
        /// Effect feature name (e.g. age).
        effect: String,
        /// Resolved cause view.
        cause_view: FeatureView,
        /// Resolved effect view.
        effect_view: FeatureView,
        /// Penalty offset `c₁` (margin required on the effect delta).
        c1: f32,
        /// Penalty slope `c₂` (effect units required per cause unit).
        c2: f32,
    },
}

impl Constraint {
    /// Builds the unary constraint on `feature`.
    ///
    /// Errors with [`CfxError::Constraint`] when the feature cannot be
    /// resolved to an ordered view (see [`FeatureView::resolve`]).
    pub fn unary(
        schema: &Schema,
        encoding: &Encoding,
        feature: &str,
    ) -> Result<Self, CfxError> {
        Ok(Constraint::UnaryIncrease {
            feature: feature.to_string(),
            view: FeatureView::resolve(schema, encoding, feature)?,
        })
    }

    /// Builds the binary constraint `cause ⇒ effect` with penalty
    /// parameters `c1`, `c2`.
    ///
    /// Errors with [`CfxError::Constraint`] on unresolvable features or a
    /// negative `c2` (the paper's `-min(0, c₂)` guard requires `c₂ ≥ 0`).
    pub fn binary(
        schema: &Schema,
        encoding: &Encoding,
        cause: &str,
        effect: &str,
        c1: f32,
        c2: f32,
    ) -> Result<Self, CfxError> {
        if c2 < 0.0 {
            return Err(CfxError::constraint(format!(
                "c2 must be non-negative (paper's -min(0, c2) guard), got {c2}"
            )));
        }
        Ok(Constraint::BinaryImplication {
            cause: cause.to_string(),
            effect: effect.to_string(),
            cause_view: FeatureView::resolve(schema, encoding, cause)?,
            effect_view: FeatureView::resolve(schema, encoding, effect)?,
            c1,
            c2,
        })
    }

    /// Human-readable name used in result tables.
    pub fn label(&self) -> String {
        match self {
            Constraint::UnaryIncrease { feature, .. } => {
                format!("{feature}↑ (unary)")
            }
            Constraint::BinaryImplication { cause, effect, .. } => {
                format!("{cause}↑⇒{effect}↑ (binary)")
            }
        }
    }

    /// Exact boolean satisfaction on one `(input, counterfactual)` pair of
    /// encoded rows.
    pub fn check(&self, x: &[f32], x_cf: &[f32]) -> bool {
        match self {
            Constraint::UnaryIncrease { view, .. } => {
                x_cf_value(view, x_cf) >= view.value(x) - CHECK_EPS
            }
            Constraint::BinaryImplication {
                cause_view, effect_view, ..
            } => {
                let dc = x_cf_value(cause_view, x_cf) - cause_view.value(x);
                let de = x_cf_value(effect_view, x_cf) - effect_view.value(x);
                if dc > CHECK_EPS {
                    // cause strictly increased ⇒ effect strictly increases
                    de > CHECK_EPS
                } else if dc.abs() <= CHECK_EPS {
                    // cause unchanged ⇒ effect may not decrease
                    de >= -CHECK_EPS
                } else {
                    // Eq. (2) is an AND of two implications whose premises
                    // are both false when the cause decreases — vacuously
                    // satisfied (matching the paper's literal definition).
                    true
                }
            }
        }
    }

    /// Differentiable penalty (scalar) on the tape; zero iff (a smooth
    /// relaxation of) the constraint holds on the whole batch.
    pub fn penalty_tape(&self, tape: &mut Tape, x: Var, x_cf: Var) -> Var {
        match self {
            Constraint::UnaryIncrease { view, .. } => {
                // paper: -min(0, x_cf - x) per element = relu(x - x_cf)
                let vx = view.value_tape(tape, x);
                let vcf = view.value_tape(tape, x_cf);
                let diff = tape.sub(vx, vcf);
                let pen = tape.relu(diff);
                tape.mean(pen)
            }
            Constraint::BinaryImplication {
                cause_view,
                effect_view,
                c1,
                c2,
                ..
            } => {
                // Hinge form of the paper's (x₂ - c₁ - c₂·x₁) term on the
                // deltas: whenever the cause rises by Δc, the effect must
                // rise by at least c₁ + c₂·Δc.
                let cx = cause_view.value_tape(tape, x);
                let ccf = cause_view.value_tape(tape, x_cf);
                let ex = effect_view.value_tape(tape, x);
                let ecf = effect_view.value_tape(tape, x_cf);
                let dc = tape.sub(ccf, cx);
                let dc_pos = tape.relu(dc); // only increases trigger the demand
                let de = tape.sub(ecf, ex);
                let demand = tape.scale(dc_pos, *c2);
                let demand = tape.add_scalar(demand, *c1);
                let gap = tape.sub(demand, de);
                let pen = tape.relu(gap);
                // Also penalize the effect decreasing outright (the
                // "cause= ⇒ effect≥" branch).
                let neg = tape.neg(de);
                let pen2 = tape.relu(neg);
                let both = tape.add(pen, pen2);
                tape.mean(both)
            }
        }
    }
}

#[inline]
fn x_cf_value(view: &FeatureView, x_cf: &[f32]) -> f32 {
    view.value(x_cf)
}

/// Fraction of rows of a counterfactual batch that satisfy **all** the
/// given constraints — the paper's "Feasibility score" numerator.
pub fn feasibility_rate(
    constraints: &[Constraint],
    x: &Tensor,
    x_cf: &Tensor,
) -> f32 {
    assert_eq!(x.shape(), x_cf.shape(), "batch shapes differ");
    if x.rows() == 0 {
        return 0.0;
    }
    let mut ok = 0;
    for r in 0..x.rows() {
        let xr = x.row_slice(r);
        let cr = x_cf.row_slice(r);
        if constraints.iter().all(|c| c.check(xr, cr)) {
            ok += 1;
        }
    }
    ok as f32 / x.rows() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_data::{EncodedDataset, Feature, RawDataset, Schema, Value};

    fn fixture() -> (Schema, Encoding) {
        let schema = Schema {
            features: vec![
                Feature::numeric("age", 0.0, 100.0),
                Feature::ordinal("education", &["hs", "bs", "ms", "phd"]),
                Feature::binary("gender").frozen(),
            ],
            target: "t".into(),
            positive_class: "p".into(),
            negative_class: "n".into(),
        };
        let raw = RawDataset {
            schema: schema.clone(),
            rows: vec![
                vec![Value::Num(0.0), Value::Cat(0), Value::Bin(false)],
                vec![Value::Num(100.0), Value::Cat(3), Value::Bin(true)],
            ],
            labels: vec![false, true],
        };
        let enc = EncodedDataset::from_raw(&raw);
        (schema, enc.encoding)
    }

    #[test]
    fn numeric_view_reads_column() {
        let (schema, enc) = fixture();
        let v = FeatureView::resolve(&schema, &enc, "age").unwrap();
        assert_eq!(v.value(&[0.42, 1.0, 0.0, 0.0, 0.0, 1.0]), 0.42);
    }

    #[test]
    fn ordinal_view_uses_argmax_level() {
        let (schema, enc) = fixture();
        let v = FeatureView::resolve(&schema, &enc, "education").unwrap();
        // one-hot on level 2 of 4 → 2/3
        let row = [0.5, 0.1, 0.2, 0.9, 0.3, 0.0];
        assert!((v.value(&row) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn binary_feature_rejected() {
        let (schema, enc) = fixture();
        let err = FeatureView::resolve(&schema, &enc, "gender").unwrap_err();
        assert!(matches!(err, CfxError::Constraint(_)), "got {err}");
        assert!(err.to_string().contains("must be numeric or ordinal"));
    }

    #[test]
    fn unknown_feature_rejected() {
        let (schema, enc) = fixture();
        let err = Constraint::unary(&schema, &enc, "salary").unwrap_err();
        assert!(err.to_string().contains("unknown constraint feature"));
    }

    #[test]
    fn unary_check_semantics() {
        let (schema, enc) = fixture();
        let c = Constraint::unary(&schema, &enc, "age").unwrap();
        let x = [0.5, 1.0, 0.0, 0.0, 0.0, 0.0];
        let up = [0.6, 1.0, 0.0, 0.0, 0.0, 0.0];
        let same = [0.5, 1.0, 0.0, 0.0, 0.0, 0.0];
        let down = [0.4, 1.0, 0.0, 0.0, 0.0, 0.0];
        assert!(c.check(&x, &up));
        assert!(c.check(&x, &same));
        assert!(!c.check(&x, &down));
    }

    #[test]
    fn binary_check_semantics() {
        let (schema, enc) = fixture();
        let c = Constraint::binary(&schema, &enc, "education", "age", 0.0, 0.2).unwrap();
        // x: age 0.5, education level 1.
        let x = [0.5, 0.0, 1.0, 0.0, 0.0, 0.0];
        // education up, age up → ok
        assert!(c.check(&x, &[0.6, 0.0, 0.0, 1.0, 0.0, 0.0]));
        // education up, age same → violates the strict branch
        assert!(!c.check(&x, &[0.5, 0.0, 0.0, 1.0, 0.0, 0.0]));
        // education same, age same → ok
        assert!(c.check(&x, &[0.5, 0.0, 1.0, 0.0, 0.0, 0.0]));
        // education same, age down → violates the weak branch
        assert!(!c.check(&x, &[0.4, 0.0, 1.0, 0.0, 0.0, 0.0]));
        // education down → vacuous per Eq. (2)
        assert!(c.check(&x, &[0.4, 1.0, 0.0, 0.0, 0.0, 0.0]));
    }

    #[test]
    fn unary_penalty_zero_iff_satisfied() {
        let (schema, enc) = fixture();
        let c = Constraint::unary(&schema, &enc, "age").unwrap();
        let x = Tensor::from_vec(2, 6, vec![
            0.5, 1.0, 0.0, 0.0, 0.0, 0.0, //
            0.2, 0.0, 1.0, 0.0, 0.0, 1.0,
        ]);
        let ok = Tensor::from_vec(2, 6, vec![
            0.7, 1.0, 0.0, 0.0, 0.0, 0.0, //
            0.2, 0.0, 1.0, 0.0, 0.0, 1.0,
        ]);
        let bad = Tensor::from_vec(2, 6, vec![
            0.1, 1.0, 0.0, 0.0, 0.0, 0.0, //
            0.2, 0.0, 1.0, 0.0, 0.0, 1.0,
        ]);
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let okv = tape.leaf(ok);
        let badv = tape.leaf(bad);
        let p_ok = c.penalty_tape(&mut tape, xv, okv);
        let p_bad = c.penalty_tape(&mut tape, xv, badv);
        assert_eq!(tape.value(p_ok).item(), 0.0);
        assert!(tape.value(p_bad).item() > 0.1);
    }

    #[test]
    fn binary_penalty_grows_with_violation() {
        let (schema, enc) = fixture();
        let c = Constraint::binary(&schema, &enc, "education", "age", 0.0, 0.3).unwrap();
        let x = Tensor::from_vec(1, 6, vec![0.5, 1.0, 0.0, 0.0, 0.0, 0.0]);
        // education jumps hs→phd (soft level 0→1), age unchanged: demand 0.3.
        let cf = Tensor::from_vec(1, 6, vec![0.5, 0.0, 0.0, 0.0, 1.0, 0.0]);
        // Same jump but age rises enough.
        let cf_ok = Tensor::from_vec(1, 6, vec![0.9, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf);
        let cfokv = tape.leaf(cf_ok);
        let p = c.penalty_tape(&mut tape, xv, cfv);
        let p_ok = c.penalty_tape(&mut tape, xv, cfokv);
        assert!((tape.value(p).item() - 0.3).abs() < 1e-5);
        assert!(tape.value(p_ok).item() < 1e-6);
    }

    #[test]
    fn penalty_is_differentiable_wrt_cf() {
        let (schema, enc) = fixture();
        let c = Constraint::unary(&schema, &enc, "age").unwrap();
        let x = Tensor::from_vec(1, 6, vec![0.5, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let cf = Tensor::from_vec(1, 6, vec![0.2, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let cfv = tape.leaf(cf);
        let p = c.penalty_tape(&mut tape, xv, cfv);
        tape.backward(p);
        let g = tape.grad(cfv);
        // Pushing age up reduces the penalty → negative gradient on col 0.
        assert!(g[(0, 0)] < 0.0);
        // Untouched columns get no gradient.
        assert_eq!(g[(0, 5)], 0.0);
    }

    #[test]
    fn feasibility_rate_counts_all_constraints() {
        let (schema, enc) = fixture();
        let cs = vec![
            Constraint::unary(&schema, &enc, "age").unwrap(),
            Constraint::binary(&schema, &enc, "education", "age", 0.0, 0.2).unwrap(),
        ];
        let x = Tensor::from_vec(2, 6, vec![
            0.5, 0.0, 1.0, 0.0, 0.0, 0.0, //
            0.5, 0.0, 1.0, 0.0, 0.0, 0.0,
        ]);
        let cf = Tensor::from_vec(2, 6, vec![
            0.8, 0.0, 0.0, 1.0, 0.0, 0.0, // edu↑ age↑ → feasible
            0.3, 0.0, 1.0, 0.0, 0.0, 0.0, // age↓ → infeasible
        ]);
        assert_eq!(feasibility_rate(&cs, &x, &cf), 0.5);
    }

    #[test]
    fn negative_c2_rejected() {
        let (schema, enc) = fixture();
        let err = Constraint::binary(&schema, &enc, "education", "age", 0.0, -1.0)
            .unwrap_err();
        assert!(err.to_string().contains("c2 must be non-negative"), "got {err}");
    }
}
