//! Automatic constraint discovery — the paper's future work (§V):
//! *"analysing the causal relations of various features in a dataset, so
//! that we can minimize the human involvement during the construction of
//! the causal constraint"*.
//!
//! Cross-sectional data cannot reveal purely temporal facts like "age only
//! increases" (a unary constraint still needs a domain assertion), but it
//! *can* reveal implication structure of the binary kind: if obtaining a
//! doctorate takes years, then the 5th-percentile age per education level
//! forms an increasing staircase, and `education↑ ⇒ age↑` is visible as a
//! **floor relationship**. This module scans candidate (cause, effect)
//! pairs, scores that staircase, and emits ready-to-train
//! [`Constraint::BinaryImplication`]s — including data-driven estimates of
//! the penalty parameters `c₁`/`c₂` the paper "selected from
//! experimentation".
//!
//! Two complementary signals are combined:
//!
//! 1. **floor monotonicity** — the fraction of adjacent cause-level pairs
//!    whose effect floor (5th percentile) strictly increases;
//! 2. **pairwise dominance** — over sampled row pairs with
//!    `cause_i > cause_j`, the probability that `effect_i > effect_j`
//!    (a Mann–Whitney-style statistic; 0.5 = no relation).

use crate::constraints::Constraint;
use cfx_data::{EncodedDataset, FeatureKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A discovered candidate constraint with its evidence.
#[derive(Debug, Clone)]
pub struct ScoredConstraint {
    /// Cause feature name.
    pub cause: String,
    /// Effect feature name.
    pub effect: String,
    /// Fraction of adjacent cause levels whose effect floor increases.
    pub floor_monotonicity: f32,
    /// P(effect_i > effect_j | cause_i > cause_j) over sampled pairs.
    pub dominance: f32,
    /// Estimated penalty offset `c₁` (encoded units): the smallest floor
    /// step, clipped at 0.
    pub c1: f32,
    /// Estimated penalty slope `c₂` (encoded effect units per unit of
    /// cause view): the mean floor slope.
    pub c2: f32,
    /// Combined score in `[0, 1]`.
    pub score: f32,
}

impl ScoredConstraint {
    /// Materializes the discovery as a trainable binary constraint.
    pub fn to_constraint(&self, data: &EncodedDataset) -> Constraint {
        Constraint::binary(
            &data.schema,
            &data.encoding,
            &self.cause,
            &self.effect,
            self.c1,
            self.c2.max(0.0),
        )
        .expect("discovered features resolve by construction")
    }
}

/// Discovery settings.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Number of cause-level bins for numeric causes.
    pub cause_bins: usize,
    /// Quantile defining the effect "floor" (0.05 = 5th percentile).
    pub floor_quantile: f32,
    /// Row pairs sampled for the dominance statistic.
    pub pair_samples: usize,
    /// Minimum rows per cause level for the level to count.
    pub min_level_support: usize,
    /// RNG seed for pair sampling.
    pub seed: u64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            cause_bins: 6,
            floor_quantile: 0.05,
            pair_samples: 20_000,
            min_level_support: 25,
            seed: 0,
        }
    }
}

/// Scans all eligible (cause, effect) feature pairs and returns candidates
/// sorted by score (best first).
///
/// Eligible causes: ordinal categoricals and numerics (binned); eligible
/// effects: numerics. Immutable features are excluded from both roles — a
/// constraint on an attribute counterfactuals cannot touch is dead weight.
pub fn discover_binary_constraints(
    data: &EncodedDataset,
    config: &DiscoveryConfig,
) -> Vec<ScoredConstraint> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    let n_features = data.schema.num_features();
    for cause_idx in 0..n_features {
        let cause = &data.schema.features[cause_idx];
        if cause.immutable {
            continue;
        }
        let eligible_cause = match &cause.kind {
            FeatureKind::Categorical { ordinal, .. } => *ordinal,
            FeatureKind::Numeric { .. } => true,
            FeatureKind::Binary => false,
        };
        if !eligible_cause {
            continue;
        }
        for effect_idx in 0..n_features {
            if effect_idx == cause_idx {
                continue;
            }
            let effect = &data.schema.features[effect_idx];
            if effect.immutable || !effect.kind.is_numeric() {
                continue;
            }
            if let Some(sc) = score_pair(
                data, cause_idx, effect_idx, config, &mut rng,
            ) {
                out.push(sc);
            }
        }
    }
    out.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Cause value of a row as a level index (ordinal level, or numeric bin).
fn cause_level(
    data: &EncodedDataset,
    row: usize,
    cause_idx: usize,
    bins: usize,
) -> usize {
    let span = data.encoding.spans[cause_idx];
    match &data.schema.features[cause_idx].kind {
        FeatureKind::Categorical { .. } => {
            let block: Vec<f32> = (span.start..span.start + span.width)
                .map(|c| data.x[(row, c)])
                .collect();
            block
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .unwrap_or(0)
        }
        _ => {
            let v = data.x[(row, span.start)];
            ((v * bins as f32) as usize).min(bins - 1)
        }
    }
}

fn score_pair(
    data: &EncodedDataset,
    cause_idx: usize,
    effect_idx: usize,
    config: &DiscoveryConfig,
    rng: &mut StdRng,
) -> Option<ScoredConstraint> {
    let n = data.len();
    if n < 4 * config.min_level_support {
        return None;
    }
    let n_levels = match &data.schema.features[cause_idx].kind {
        FeatureKind::Categorical { levels, .. } => levels.len(),
        _ => config.cause_bins,
    };
    let effect_col = data.encoding.spans[effect_idx].start;

    // Bucket effect values by cause level.
    let mut buckets: Vec<Vec<f32>> = vec![Vec::new(); n_levels];
    for r in 0..n {
        let lvl = cause_level(data, r, cause_idx, config.cause_bins);
        buckets[lvl].push(data.x[(r, effect_col)]);
    }

    // Floors per supported level.
    let mut floors: Vec<(usize, f32)> = Vec::new();
    for (lvl, bucket) in buckets.iter_mut().enumerate() {
        if bucket.len() < config.min_level_support {
            continue;
        }
        bucket.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = ((bucket.len() as f32 - 1.0) * config.floor_quantile) as usize;
        floors.push((lvl, bucket[q]));
    }
    if floors.len() < 3 {
        return None;
    }

    // Signal 1: strictly increasing floor staircase.
    let mut rising = 0usize;
    let mut steps = Vec::new();
    for w in floors.windows(2) {
        let dl = (w[1].0 - w[0].0) as f32;
        let df = w[1].1 - w[0].1;
        steps.push(df / dl);
        if df > 1e-4 {
            rising += 1;
        }
    }
    let floor_monotonicity = rising as f32 / (floors.len() - 1) as f32;

    // Signal 2: pairwise dominance.
    let mut wins = 0usize;
    let mut comparable = 0usize;
    for _ in 0..config.pair_samples {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        let li = cause_level(data, i, cause_idx, config.cause_bins);
        let lj = cause_level(data, j, cause_idx, config.cause_bins);
        if li == lj {
            continue;
        }
        let (hi, lo) = if li > lj { (i, j) } else { (j, i) };
        comparable += 1;
        if data.x[(hi, effect_col)] > data.x[(lo, effect_col)] {
            wins += 1;
        }
    }
    if comparable < 100 {
        return None;
    }
    let dominance = wins as f32 / comparable as f32;

    // Penalty parameters from the staircase: slope per *view unit* — the
    // constraint's differentiable view maps the cause to [0, 1], so a
    // level step of 1 corresponds to 1/(n_levels-1) view units.
    let mean_step = steps.iter().sum::<f32>() / steps.len() as f32;
    let c2 = mean_step * (n_levels.max(2) - 1) as f32;
    let c1 = steps
        .iter()
        .cloned()
        .fold(f32::INFINITY, f32::min)
        .clamp(0.0, 0.5);

    // Combined score: both signals must agree; dominance is rescaled from
    // its 0.5 chance level.
    let dominance_signal = ((dominance - 0.5) * 2.0).clamp(0.0, 1.0);
    let score = floor_monotonicity * dominance_signal;

    Some(ScoredConstraint {
        cause: data.schema.features[cause_idx].name.clone(),
        effect: data.schema.features[effect_idx].name.clone(),
        floor_monotonicity,
        dominance,
        c1,
        c2,
        score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_data::DatasetId;

    fn discover(ds: DatasetId, n: usize) -> Vec<ScoredConstraint> {
        let raw = ds.generate_clean(n, 17);
        let data = EncodedDataset::from_raw(&raw);
        discover_binary_constraints(&data, &DiscoveryConfig::default())
    }

    #[test]
    fn adult_education_age_is_a_top_discovery() {
        let found = discover(DatasetId::Adult, 8_000);
        assert!(!found.is_empty());
        let rank = found
            .iter()
            .position(|c| c.cause == "education" && c.effect == "age")
            .expect("education⇒age not discovered at all");
        assert!(
            rank < 3,
            "education⇒age ranked {rank}: {:?}",
            found
                .iter()
                .map(|c| (c.cause.clone(), c.effect.clone(), c.score))
                .collect::<Vec<_>>()
        );
        let ea = &found[rank];
        assert!(ea.floor_monotonicity > 0.8, "{ea:?}");
        assert!(ea.dominance > 0.55, "{ea:?}");
    }

    #[test]
    fn law_tier_lsat_is_a_top_discovery() {
        let found = discover(DatasetId::LawSchool, 8_000);
        let rank = found
            .iter()
            .position(|c| c.cause == "tier" && c.effect == "lsat")
            .expect("tier⇒lsat not discovered");
        assert!(rank < 3, "tier⇒lsat ranked {rank}");
        assert!(found[rank].score > 0.5, "{:?}", found[rank]);
    }

    #[test]
    fn unrelated_pairs_score_lower_than_causal_ones() {
        let found = discover(DatasetId::Adult, 8_000);
        let score_of = |cause: &str, effect: &str| {
            found
                .iter()
                .find(|c| c.cause == cause && c.effect == effect)
                .map(|c| c.score)
                .unwrap_or(0.0)
        };
        let causal = score_of("education", "age");
        let unrelated = score_of("hours_per_week", "age");
        assert!(
            causal > 0.1 && causal > 5.0 * unrelated,
            "causal {causal} vs unrelated {unrelated}"
        );
    }

    #[test]
    fn immutable_features_never_appear() {
        let found = discover(DatasetId::Adult, 4_000);
        for c in &found {
            assert_ne!(c.cause, "race");
            assert_ne!(c.cause, "gender");
            assert_ne!(c.effect, "race");
        }
    }

    #[test]
    fn discovered_constraint_is_trainable() {
        let raw = DatasetId::Adult.generate_clean(6_000, 5);
        let data = EncodedDataset::from_raw(&raw);
        let found =
            discover_binary_constraints(&data, &DiscoveryConfig::default());
        let top = found
            .iter()
            .find(|c| c.cause == "education" && c.effect == "age")
            .expect("not discovered");
        let constraint = top.to_constraint(&data);
        // The materialized constraint must behave like the hand-written
        // one on obvious cases.
        let x = data.x.row_slice(0).to_vec();
        assert!(constraint.check(&x, &x), "identity must satisfy Eq. (2)");
    }

    #[test]
    fn tiny_datasets_yield_no_spurious_candidates() {
        let raw = DatasetId::Adult.generate_clean(40, 0);
        let data = EncodedDataset::from_raw(&raw);
        let found =
            discover_binary_constraints(&data, &DiscoveryConfig::default());
        assert!(found.is_empty(), "n=40 should not support discovery");
    }
}
