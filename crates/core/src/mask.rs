//! Immutable-attribute handling (§III-C, *Immutable Attributes*).
//!
//! The paper disables immutable attributes (race, gender/sex) for the VAE
//! and re-incorporates them in the final prediction. We realize that as a
//! column mask applied to the generator's *delta*:
//!
//! ```text
//! x_cf = x + m ⊙ (recon − x),   m ∈ {0, 1}^width, m = 0 on immutable cols
//! ```
//!
//! which (a) forces immutable columns to their original values in every
//! counterfactual and (b) blocks gradient flow into the decoder through
//! those columns — the differentiable equivalent of "disabled for the
//! training of the VAE".

use cfx_data::{Encoding, Schema};
use cfx_tensor::{Tape, Tensor, Var};

/// A 0/1 column mask over the encoded feature space (1 = mutable).
#[derive(Debug, Clone, PartialEq)]
pub struct ImmutableMask {
    mask_row: Vec<f32>,
}

impl ImmutableMask {
    /// Builds the mask from the schema's immutable flags.
    pub fn from_schema(schema: &Schema, encoding: &Encoding) -> Self {
        let mut mask_row = vec![1.0f32; encoding.width];
        for col in encoding.immutable_columns(schema) {
            mask_row[col] = 0.0;
        }
        ImmutableMask { mask_row }
    }

    /// A no-op mask (everything mutable) of the given width — used when
    /// `mask_immutable` is disabled in the ablation.
    pub fn all_mutable(width: usize) -> Self {
        ImmutableMask { mask_row: vec![1.0; width] }
    }

    /// Encoded width the mask covers.
    pub fn width(&self) -> usize {
        self.mask_row.len()
    }

    /// Number of masked (immutable) columns.
    pub fn frozen_count(&self) -> usize {
        self.mask_row.iter().filter(|&&m| m == 0.0).count()
    }

    /// Whether column `c` is mutable.
    pub fn is_mutable(&self, c: usize) -> bool {
        self.mask_row[c] != 0.0
    }

    /// Applies the mask on the tape: `x + m ⊙ (recon − x)` for a batch of
    /// `rows` rows.
    pub fn apply_tape(&self, tape: &mut Tape, x: Var, recon: Var) -> Var {
        let rows = tape.value(x).rows();
        let mask = self.batch_mask(rows);
        let m = tape.leaf(mask);
        let delta = tape.sub(recon, x);
        let masked = tape.mul(delta, m);
        tape.add(x, masked)
    }

    /// Plain-tensor version for inference.
    pub fn apply(&self, x: &Tensor, recon: &Tensor) -> Tensor {
        assert_eq!(x.shape(), recon.shape(), "shape mismatch");
        assert_eq!(x.cols(), self.width(), "mask width");
        let mut out = recon.clone();
        for r in 0..x.rows() {
            let xr = x.row_slice(r);
            let or = out.row_slice_mut(r);
            for (c, &m) in self.mask_row.iter().enumerate() {
                if m == 0.0 {
                    or[c] = xr[c];
                }
            }
        }
        out
    }

    /// Pool-backed row-broadcast of the mask: the tape leaf built from it is
    /// recycled by `Tape::reset`, so repeated training steps reuse the same
    /// buffer instead of reallocating it.
    fn batch_mask(&self, rows: usize) -> Tensor {
        let width = self.width();
        let mut data = cfx_tensor::pool::take_buf(rows * width);
        for chunk in data.chunks_exact_mut(width.max(1)) {
            chunk.copy_from_slice(&self.mask_row);
        }
        Tensor::from_vec(rows, width, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfx_data::{EncodedDataset, Feature, RawDataset, Value};

    fn fixture() -> (Schema, Encoding) {
        let schema = Schema {
            features: vec![
                Feature::numeric("age", 0.0, 100.0),
                Feature::categorical("race", &["a", "b", "c"]).frozen(),
                Feature::binary("gender").frozen(),
            ],
            target: "t".into(),
            positive_class: "p".into(),
            negative_class: "n".into(),
        };
        let raw = RawDataset {
            schema: schema.clone(),
            rows: vec![
                vec![Value::Num(0.0), Value::Cat(0), Value::Bin(false)],
                vec![Value::Num(100.0), Value::Cat(2), Value::Bin(true)],
            ],
            labels: vec![false, true],
        };
        let enc = EncodedDataset::from_raw(&raw);
        (schema, enc.encoding)
    }

    #[test]
    fn mask_covers_immutable_spans() {
        let (schema, enc) = fixture();
        let m = ImmutableMask::from_schema(&schema, &enc);
        assert_eq!(m.width(), 5);
        assert_eq!(m.frozen_count(), 4); // race one-hot (3) + gender (1)
        assert!(m.is_mutable(0));
        assert!(!m.is_mutable(1));
        assert!(!m.is_mutable(4));
    }

    #[test]
    fn apply_restores_immutable_columns() {
        let (schema, enc) = fixture();
        let m = ImmutableMask::from_schema(&schema, &enc);
        let x = Tensor::from_vec(1, 5, vec![0.5, 1.0, 0.0, 0.0, 1.0]);
        let recon = Tensor::from_vec(1, 5, vec![0.9, 0.0, 0.9, 0.1, 0.0]);
        let cf = m.apply(&x, &recon);
        assert_eq!(cf.as_slice(), &[0.9, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn tape_apply_matches_plain_and_blocks_grads() {
        let (schema, enc) = fixture();
        let m = ImmutableMask::from_schema(&schema, &enc);
        let x = Tensor::from_vec(1, 5, vec![0.5, 1.0, 0.0, 0.0, 1.0]);
        let recon = Tensor::from_vec(1, 5, vec![0.9, 0.0, 0.9, 0.1, 0.0]);
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let rv = tape.leaf(recon.clone());
        let cf = m.apply_tape(&mut tape, xv, rv);
        assert_eq!(
            tape.value(cf).as_slice(),
            m.apply(&x, &recon).as_slice()
        );
        let s = tape.sum(cf);
        tape.backward(s);
        let g = tape.grad(rv);
        // Gradient reaches the mutable column only.
        assert_eq!(g.as_slice(), &[1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn all_mutable_is_identity() {
        let m = ImmutableMask::all_mutable(3);
        let x = Tensor::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        let recon = Tensor::from_vec(1, 3, vec![0.9, 0.8, 0.7]);
        assert_eq!(m.apply(&x, &recon), recon);
        assert_eq!(m.frozen_count(), 0);
    }
}
