//! # cfx-core
//!
//! The paper's primary contribution: a framework for **feasible
//! counterfactual exploration** that trains a conditional VAE against a
//! frozen black-box classifier with a four-part loss — validity (hinge),
//! proximity (L1), feasibility (causal-constraint penalties) and sparsity
//! (smooth L0/L1) — while freezing immutable attributes (§III).
//!
//! ```no_run
//! use cfx_core::{ConstraintMode, FeasibleCfConfig, FeasibleCfModel};
//! use cfx_data::{DatasetId, EncodedDataset};
//! use cfx_models::{BlackBox, BlackBoxConfig};
//!
//! let raw = DatasetId::Adult.generate(5_000, 42);
//! let data = EncodedDataset::from_raw(&raw);
//!
//! // 1. Train and freeze the black box (§III-C, Model Steps).
//! let bb_cfg = BlackBoxConfig::default();
//! let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
//! blackbox.train(&data.x, &data.y, &bb_cfg);
//!
//! // 2. Train the unary-constraint counterfactual generator (Table III).
//! //    fit() runs under a divergence watchdog: the returned TrainReport
//! //    records any rollback/retry recovery events.
//! let cfg = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary);
//! let constraints = FeasibleCfModel::paper_constraints(
//!     DatasetId::Adult, &data, ConstraintMode::Unary, cfg.c1, cfg.c2)
//!     .expect("paper constraint features exist in the schema");
//! let mut model = FeasibleCfModel::new(&data, blackbox, constraints, cfg);
//! let report = model.fit(&data.x);
//! assert!(report.last_total().is_some());
//!
//! // 3. Explain (with retry-then-fallback degradation; see provenance).
//! let batch = model.explain_batch(&data.x);
//! println!("validity {:.1}%, feasibility {:.1}%",
//!     100.0 * batch.validity_rate(), 100.0 * batch.feasibility_rate());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod constraints;
pub mod discovery;
pub mod diverse;
pub mod explain;
pub mod loss;
pub mod mask;
pub mod path;
pub mod model;

pub use cfx_tensor::checkpoint::{
    Checkpoint, CheckpointConfig, CheckpointManager,
};
pub use cfx_tensor::CfxError;
pub use config::{
    CfLossWeights, ConstraintMode, ExplainConfig, FeasibleCfConfig,
    GenRecoveryConfig, RobustMode, WatchdogConfig,
};
pub use constraints::{feasibility_rate, Constraint, FeatureView};
pub use discovery::{discover_binary_constraints, DiscoveryConfig, ScoredConstraint};
pub use diverse::{mean_pairwise_l1, DiverseConfig, DiverseSet, FilterLevel};
pub use explain::{
    format_comparison, Counterfactual, ExplanationBatch, Provenance,
    ProvenanceCounts,
};
pub use loss::{
    cf_loss, cf_loss_robust, proximity_penalty, robust_validity,
    sparsity_penalty, CfLossParts,
};
pub use mask::ImmutableMask;
pub use path::{LatentPath, PathStep};
pub use model::{
    EpochStats, FaultDetected, FeasibleCfModel, RecoveryEvent, TrainReport,
    TrainStatus, SERVABLE_FORMAT, SERVABLE_REFSTATS,
};
