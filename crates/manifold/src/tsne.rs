//! Exact t-SNE (van der Maaten & Hinton 2008, building on Hinton & Roweis'
//! SNE [21]) — the projection the paper uses for its Fig. 6 manifolds.
//!
//! This is the textbook O(n²) algorithm: Gaussian input affinities with a
//! per-point bandwidth found by binary search on perplexity, symmetrized
//! and exaggerated early, Student-t output affinities, and momentum
//! gradient descent with per-parameter gains. At the few thousand points
//! the figures use, the exact method is both fast enough and free of
//! Barnes–Hut approximation error.

use crate::pca::Pca;
use cfx_tensor::runtime;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// t-SNE hyper-parameters (defaults follow sklearn's).
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity (effective number of neighbours).
    pub perplexity: f32,
    /// Total gradient-descent iterations.
    pub n_iter: usize,
    /// Learning rate (η).
    pub learning_rate: f32,
    /// Early-exaggeration factor applied to P.
    pub early_exaggeration: f32,
    /// Iterations during which exaggeration is active.
    pub exaggeration_iters: usize,
    /// Momentum before/after the exaggeration phase.
    pub momentum: (f32, f32),
    /// Seed for the random fallback init.
    pub seed: u64,
    /// Initialize from the first two principal components (scaled), as
    /// sklearn's `init="pca"`; falls back to random Gaussian otherwise.
    pub pca_init: bool,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            n_iter: 500,
            learning_rate: 200.0,
            early_exaggeration: 12.0,
            exaggeration_iters: 120,
            momentum: (0.5, 0.8),
            seed: 0,
            pca_init: true,
        }
    }
}

/// Embeds `data` (rows = observations) into 2-D.
///
/// # Panics
/// Panics if fewer than 4 rows are given (perplexity needs neighbours) or
/// the rows are ragged.
pub fn tsne(data: &[Vec<f32>], config: &TsneConfig) -> Vec<(f32, f32)> {
    let n = data.len();
    assert!(n >= 4, "t-SNE needs at least 4 points, got {n}");
    let dim = data[0].len();
    assert!(data.iter().all(|r| r.len() == dim), "ragged data");
    // Perplexity must leave room for neighbours.
    let perplexity = config.perplexity.min((n as f32 - 2.0) / 3.0).max(2.0);

    let d2 = pairwise_sq_dists(data);
    let mut p = joint_probabilities(&d2, perplexity);
    for v in &mut p {
        *v *= config.early_exaggeration;
    }

    let mut y = init_embedding(data, config);
    let mut dy = vec![(0.0f32, 0.0f32); n];
    let mut gains = vec![(1.0f32, 1.0f32); n];

    for iter in 0..config.n_iter {
        if iter == config.exaggeration_iters {
            for v in &mut p {
                *v /= config.early_exaggeration;
            }
        }
        let momentum = if iter < config.exaggeration_iters {
            config.momentum.0
        } else {
            config.momentum.1
        };

        // Student-t affinities q and normalization Z. Worker threads fill
        // whole rows of `num` (the kernel is bitwise symmetric, so the
        // full-row form matches the half-the-flops triangle form used on
        // one thread); Z is then reduced over the upper triangle in index
        // order either way, keeping it bitwise stable across thread
        // counts.
        let mut num = vec![0.0f32; n * n];
        let mut z = 0.0f32;
        let student_t = |i: usize, j: usize| {
            let dx = y[i].0 - y[j].0;
            let dyv = y[i].1 - y[j].1;
            1.0 / (1.0 + dx * dx + dyv * dyv)
        };
        if runtime::current_threads() <= 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    let t = student_t(i, j);
                    num[i * n + j] = t;
                    num[j * n + i] = t;
                    z += 2.0 * t;
                }
            }
        } else {
            runtime::parallel_chunks_mut(&mut num, n, 8, |row0, chunk| {
                for (r, row) in chunk.chunks_mut(n).enumerate() {
                    let i = row0 + r;
                    for (j, v) in row.iter_mut().enumerate() {
                        if j != i {
                            *v = student_t(i, j);
                        }
                    }
                }
            });
            for i in 0..n {
                for j in (i + 1)..n {
                    z += 2.0 * num[i * n + j];
                }
            }
        }
        let z = z.max(1e-12);

        // Gradient 4 Σ_j (p_ij − q_ij) t_ij (y_i − y_j). Rows are
        // independent given `num` and `z`, so they fan out across
        // workers; the gains/momentum update below stays in index order.
        let grads = {
            let (p, num, y) = (&p, &num, &y);
            runtime::parallel_map(n, 64, move |i| {
                let mut gx = 0.0f32;
                let mut gy = 0.0f32;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let t = num[i * n + j];
                    let q = t / z;
                    let mult = (p[i * n + j] - q) * t;
                    gx += mult * (y[i].0 - y[j].0);
                    gy += mult * (y[i].1 - y[j].1);
                }
                (4.0 * gx, 4.0 * gy)
            })
        };
        for (i, &(gx, gy)) in grads.iter().enumerate() {
            // Per-parameter adaptive gains (Jacobs rule), as in the
            // reference implementation.
            let g = &mut gains[i];
            g.0 = if (gx > 0.0) == (dy[i].0 > 0.0) {
                (g.0 * 0.8).max(0.01)
            } else {
                g.0 + 0.2
            };
            g.1 = if (gy > 0.0) == (dy[i].1 > 0.0) {
                (g.1 * 0.8).max(0.01)
            } else {
                g.1 + 0.2
            };

            dy[i].0 = momentum * dy[i].0 - config.learning_rate * g.0 * gx;
            dy[i].1 = momentum * dy[i].1 - config.learning_rate * g.1 * gy;
        }
        for i in 0..n {
            y[i].0 += dy[i].0;
            y[i].1 += dy[i].1;
        }
        center(&mut y);
    }
    y
}

fn init_embedding(data: &[Vec<f32>], config: &TsneConfig) -> Vec<(f32, f32)> {
    let n = data.len();
    if config.pca_init && data[0].len() >= 2 {
        let pca = Pca::fit(data, 2);
        let proj = pca.transform(data);
        // Scale so the first axis has std 1e-4 (sklearn's convention).
        let std0 = (proj.iter().map(|p| p[0] * p[0]).sum::<f32>() / n as f32)
            .sqrt()
            .max(1e-12);
        return proj
            .iter()
            .map(|p| (p[0] / std0 * 1e-4, p[1] / std0 * 1e-4))
            .collect();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..n)
        .map(|_| {
            (
                1e-4 * crate::randn(&mut rng),
                1e-4 * crate::randn(&mut rng),
            )
        })
        .collect()
}

fn center(y: &mut [(f32, f32)]) {
    let n = y.len() as f32;
    let (mx, my) = y
        .iter()
        .fold((0.0f32, 0.0f32), |(a, b), &(x, y)| (a + x, b + y));
    for p in y.iter_mut() {
        p.0 -= mx / n;
        p.1 -= my / n;
    }
}

/// All pairwise squared Euclidean distances, row-major `n × n`.
///
/// Workers fill the strict upper triangle only (each row computes its
/// pairs `j > i`) and a cheap serial pass mirrors it afterwards, so the
/// parallel path does the same half-count of distance computations as a
/// serial triangle sweep — the old whole-row split recomputed every pair
/// twice, which is why t2/t4 used to *lose* to t1 here. Thread count and
/// the [`runtime::dispatch_rows`] serial/parallel decision never change
/// the result: each pair is computed once, summing over dimensions in
/// ascending order, and mirrored exactly.
pub fn pairwise_sq_dists(data: &[Vec<f32>]) -> Vec<f32> {
    let n = data.len();
    let mut out = vec![0.0f32; n * n];
    if n == 0 {
        return out;
    }
    let d = data[0].len();
    let sq_dist = |i: usize, j: usize| -> f32 {
        data[i]
            .iter()
            .zip(&data[j])
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    };
    // Sub, multiply, add per dimension, n(n-1)/2 unique pairs.
    let flops = 3 * d as u64 * (n as u64 * (n as u64 - 1) / 2);
    runtime::dispatch_rows(&mut out, n, flops, |row0, chunk| {
        for (r, row) in chunk.chunks_mut(n).enumerate() {
            let i = row0 + r;
            for j in (i + 1)..n {
                row[j] = sq_dist(i, j);
            }
        }
    });
    for i in 0..n {
        for j in (i + 1)..n {
            out[j * n + i] = out[i * n + j];
        }
    }
    out
}

/// Symmetrized joint probabilities `p_ij` with per-point bandwidths found
/// by binary search so each conditional distribution has the target
/// perplexity.
pub fn joint_probabilities(d2: &[f32], perplexity: f32) -> Vec<f32> {
    let n = (d2.len() as f64).sqrt() as usize;
    debug_assert_eq!(n * n, d2.len());
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f32; n * n];

    // Each point's bandwidth search touches only its own distance row, so
    // rows of the conditional matrix fan out across worker threads.
    runtime::parallel_chunks_mut(&mut p, n, 8, |row0, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            let i = row0 + r;
            let row = &d2[i * n..(i + 1) * n];
            let mut beta = 1.0f32; // 1 / (2σ²)
            let (mut beta_min, mut beta_max) = (0.0f32, f32::INFINITY);
            let probs = out_row;
            for _ in 0..64 {
                // Conditional distribution at the current beta.
                let mut sum = 0.0f32;
                for (j, &d) in row.iter().enumerate() {
                    probs[j] = if j == i { 0.0 } else { (-beta * d).exp() };
                    sum += probs[j];
                }
                let sum = sum.max(1e-12);
                let mut entropy = 0.0f32;
                for pj in probs.iter_mut() {
                    *pj /= sum;
                    if *pj > 1e-12 {
                        entropy -= *pj * pj.ln();
                    }
                }
                let diff = entropy - target_entropy;
                if diff.abs() < 1e-4 {
                    break;
                }
                if diff > 0.0 {
                    beta_min = beta;
                    beta = if beta_max.is_finite() {
                        (beta + beta_max) / 2.0
                    } else {
                        beta * 2.0
                    };
                } else {
                    beta_max = beta;
                    beta = (beta + beta_min) / 2.0;
                }
            }
        }
    });

    // Symmetrize and normalize: p_ij = (p_j|i + p_i|j) / 2n, floored.
    let mut joint = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] =
                ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }
    for i in 0..n {
        joint[i * n + i] = 0.0;
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs in 5-D.
    fn two_blobs(n_per: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..(2 * n_per) {
            let cluster = (i >= n_per) as u8;
            let base = if cluster == 1 { 5.0 } else { 0.0 };
            let row: Vec<f32> = (0..5)
                .map(|d| base + 0.3 * (((i * 31 + d * 17) % 100) as f32 / 100.0 - 0.5))
                .collect();
            data.push(row);
            labels.push(cluster);
        }
        (data, labels)
    }

    #[test]
    fn joint_probabilities_are_symmetric_and_normalized() {
        let (data, _) = two_blobs(10);
        let d2 = pairwise_sq_dists(&data);
        let p = joint_probabilities(&d2, 5.0);
        let n = data.len();
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "Σp = {total}");
        for i in 0..n {
            assert_eq!(p[i * n + i], 0.0);
            for j in 0..n {
                assert!((p[i * n + j] - p[j * n + i]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let (data, labels) = two_blobs(25);
        let config = TsneConfig { n_iter: 300, ..Default::default() };
        let y = tsne(&data, &config);
        // Centroids of the two clusters in embedding space.
        let centroid = |c: u8| {
            let pts: Vec<&(f32, f32)> = y
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| p)
                .collect();
            let k = pts.len() as f32;
            (
                pts.iter().map(|p| p.0).sum::<f32>() / k,
                pts.iter().map(|p| p.1).sum::<f32>() / k,
            )
        };
        let (ax, ay) = centroid(0);
        let (bx, by) = centroid(1);
        let between = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        // Mean within-cluster spread.
        let spread = |c: u8, cx: f32, cy: f32| {
            let pts: Vec<&(f32, f32)> = y
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| p)
                .collect();
            pts.iter()
                .map(|p| ((p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sqrt())
                .sum::<f32>()
                / pts.len() as f32
        };
        let within = spread(0, ax, ay).max(spread(1, bx, by));
        assert!(
            between > 2.0 * within,
            "clusters overlap: between {between}, within {within}"
        );
    }

    #[test]
    fn embedding_is_centered() {
        let (data, _) = two_blobs(10);
        let y = tsne(&data, &TsneConfig { n_iter: 60, ..Default::default() });
        let mx: f32 = y.iter().map(|p| p.0).sum::<f32>() / y.len() as f32;
        let my: f32 = y.iter().map(|p| p.1).sum::<f32>() / y.len() as f32;
        assert!(mx.abs() < 1e-3 && my.abs() < 1e-3);
    }

    #[test]
    fn perplexity_is_clamped_for_tiny_inputs() {
        let data: Vec<Vec<f32>> =
            (0..5).map(|i| vec![i as f32, (i * i) as f32]).collect();
        // perplexity 30 >> n; must not panic or NaN.
        let y = tsne(&data, &TsneConfig { n_iter: 50, ..Default::default() });
        assert!(y.iter().all(|p| p.0.is_finite() && p.1.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn too_few_points_rejected() {
        let _ = tsne(&[vec![0.0], vec![1.0]], &TsneConfig::default());
    }

    #[test]
    fn deterministic_given_config() {
        let (data, _) = two_blobs(8);
        let cfg = TsneConfig { n_iter: 40, ..Default::default() };
        assert_eq!(tsne(&data, &cfg), tsne(&data, &cfg));
    }
}
