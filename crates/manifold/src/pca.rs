//! Principal component analysis via power iteration with deflation.
//!
//! Used to initialize t-SNE embeddings (the standard `init="pca"` of
//! sklearn) and as a cheap linear baseline for the manifold views.

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-dimension mean of the training data.
    pub mean: Vec<f32>,
    /// Principal components, one `Vec<f32>` of length `dim` per component.
    pub components: Vec<Vec<f32>>,
    /// Eigenvalue (explained variance) per component.
    pub explained_variance: Vec<f32>,
}

impl Pca {
    /// Fits `n_components` principal components of `data` (rows =
    /// observations). Uses power iteration on the covariance with
    /// deflation; plenty for the ≤ 2 components the figures need.
    ///
    /// # Panics
    /// Panics if `data` is empty or ragged, or `n_components` exceeds the
    /// dimensionality.
    pub fn fit(data: &[Vec<f32>], n_components: usize) -> Pca {
        assert!(!data.is_empty(), "PCA needs at least one observation");
        let dim = data[0].len();
        assert!(data.iter().all(|r| r.len() == dim), "ragged data");
        assert!(
            n_components <= dim,
            "cannot extract {n_components} components from {dim} dims"
        );
        let n = data.len() as f32;
        let mut mean = vec![0.0f32; dim];
        for row in data {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        // Centered copy (deflated in place as components are extracted).
        let mut centered: Vec<Vec<f32>> = data
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(&v, &m)| v - m).collect())
            .collect();

        let mut components = Vec::with_capacity(n_components);
        let mut explained_variance = Vec::with_capacity(n_components);
        for k in 0..n_components {
            let (comp, eigval) = dominant_component(&centered, 128, k as u64);
            // Deflate: remove the projection onto this component.
            for row in &mut centered {
                let proj: f32 =
                    row.iter().zip(&comp).map(|(&r, &c)| r * c).sum();
                for (r, &c) in row.iter_mut().zip(&comp) {
                    *r -= proj * c;
                }
            }
            components.push(comp);
            explained_variance.push(eigval / n);
        }
        Pca { mean, components, explained_variance }
    }

    /// Projects rows onto the fitted components.
    pub fn transform(&self, data: &[Vec<f32>]) -> Vec<Vec<f32>> {
        data.iter()
            .map(|row| {
                self.components
                    .iter()
                    .map(|c| {
                        row.iter()
                            .zip(c)
                            .zip(&self.mean)
                            .map(|((&v, &c), &m)| (v - m) * c)
                            .sum()
                    })
                    .collect()
            })
            .collect()
    }
}

/// Power iteration for the dominant eigenvector of `Xᵀ X` (unnormalized
/// covariance), returning `(unit eigenvector, eigenvalue)`.
fn dominant_component(centered: &[Vec<f32>], iters: usize, seed: u64) -> (Vec<f32>, f32) {
    let dim = centered[0].len();
    // Deterministic quasi-random start (varies with deflation round).
    let mut v: Vec<f32> = (0..dim)
        .map(|i| (((i as u64 + 1) * (seed + 3) * 2654435761) % 1000) as f32 / 1000.0 - 0.5)
        .collect();
    normalize(&mut v);
    let mut eigval = 0.0f32;
    for _ in 0..iters {
        // w = Xᵀ (X v)
        let mut w = vec![0.0f32; dim];
        for row in centered {
            let proj: f32 = row.iter().zip(&v).map(|(&r, &c)| r * c).sum();
            for (w, &r) in w.iter_mut().zip(row) {
                *w += proj * r;
            }
        }
        eigval = (w.iter().map(|x| x * x).sum::<f32>()).sqrt();
        if eigval < 1e-12 {
            // Degenerate direction (no variance left).
            return (v, 0.0);
        }
        for (v, &w) in v.iter_mut().zip(&w) {
            *v = w / eigval;
        }
    }
    (v, eigval)
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    for x in v {
        *x /= norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Anisotropic Gaussian-ish cloud stretched along (1, 1)/√2.
    fn stretched_cloud() -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for i in 0..200 {
            let t = (i as f32 / 200.0 - 0.5) * 10.0; // long axis
            let s = ((i * 7919) % 100) as f32 / 100.0 - 0.5; // short axis
            out.push(vec![t + s * 0.2, t - s * 0.2]);
        }
        out
    }

    #[test]
    fn first_component_follows_the_long_axis() {
        let pca = Pca::fit(&stretched_cloud(), 2);
        let c = &pca.components[0];
        // Should align with ±(1,1)/√2.
        let dot = (c[0] + c[1]).abs() / 2f32.sqrt();
        assert!(dot > 0.99, "component {c:?}");
        assert!(pca.explained_variance[0] > pca.explained_variance[1] * 10.0);
    }

    #[test]
    fn transform_centers_data() {
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let pca = Pca::fit(&data, 1);
        let proj = pca.transform(&data);
        let mean: f32 = proj.iter().map(|p| p[0]).sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-4, "projections not centered: {mean}");
    }

    #[test]
    fn components_are_orthonormal() {
        let pca = Pca::fit(&stretched_cloud(), 2);
        let a = &pca.components[0];
        let b = &pca.components[1];
        let na: f32 = a.iter().map(|x| x * x).sum();
        let nb: f32 = b.iter().map(|x| x * x).sum();
        let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        assert!((na - 1.0).abs() < 1e-3);
        assert!((nb - 1.0).abs() < 1e-3);
        assert!(dot.abs() < 1e-2, "components not orthogonal: {dot}");
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_data_rejected() {
        let _ = Pca::fit(&[], 1);
    }

    #[test]
    fn constant_data_yields_zero_variance() {
        let data = vec![vec![2.0, 2.0]; 10];
        let pca = Pca::fit(&data, 1);
        assert!(pca.explained_variance[0] < 1e-6);
    }
}
