//! # cfx-manifold
//!
//! The density/manifold toolkit behind the paper's Figs. 3, 5 and 6:
//! exact [t-SNE](tsne) to project VAE latent spaces to 2-D, [PCA](pca)
//! for initialization and linear views, Gaussian [KDE](kde) for density
//! estimates (also used by the FACE baseline), and [grid] utilities to
//! render and *quantify* the separability of feasible vs. infeasible
//! regions that Fig. 6 shows qualitatively.

#![warn(missing_docs)]

pub mod grid;
pub mod kde;
pub mod pca;
pub mod quality;
pub mod tsne;

pub use grid::{ascii_scatter, knn_separability};
pub use kde::Kde;
pub use pca::Pca;
pub use quality::trustworthiness;
pub use tsne::{joint_probabilities, pairwise_sq_dists, tsne, TsneConfig};

use rand::Rng;

/// One standard-normal draw (Box–Muller); local copy so the crate stays
/// dependency-light.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}
