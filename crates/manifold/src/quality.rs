//! Embedding-quality measures: how faithfully a 2-D projection (t-SNE/PCA)
//! preserves the high-dimensional neighbourhood structure. Used to sanity-
//! check the Fig. 6 manifolds beyond eyeballing.

/// Trustworthiness (Venna & Kaski): penalizes points that are close in the
/// embedding but were *not* neighbours in the original space.
///
/// `T(k) = 1 − 2/(n·k·(2n−3k−1)) · Σᵢ Σ_{j ∈ Uᵢ(k)} (r(i,j) − k)`
///
/// where `Uᵢ(k)` are the k nearest embedded neighbours of `i` that are not
/// among its k nearest original neighbours, and `r(i,j)` is `j`'s rank in
/// the original-space neighbour ordering of `i`. 1.0 = perfectly
/// trustworthy; values near 0.5 mean the embedding invents neighbours.
///
/// # Panics
/// Panics if lengths differ or `k` is too large (`k < n/2` required).
pub fn trustworthiness(
    original: &[Vec<f32>],
    embedding: &[(f32, f32)],
    k: usize,
) -> f32 {
    let n = original.len();
    assert_eq!(n, embedding.len(), "original/embedding length mismatch");
    assert!(k >= 1 && 2 * n > 3 * k + 1, "k={k} too large for n={n}");
    if n <= k + 1 {
        return 1.0;
    }

    // Original-space neighbour ranks.
    let mut orig_rank = vec![vec![0usize; n]; n];
    let mut orig_neighbours = vec![Vec::with_capacity(k); n];
    let mut dists: Vec<(f32, usize)> = Vec::with_capacity(n - 1);
    for i in 0..n {
        dists.clear();
        for j in 0..n {
            if i == j {
                continue;
            }
            let d: f32 = original[i]
                .iter()
                .zip(&original[j])
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            dists.push((d, j));
        }
        dists.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        for (rank, &(_, j)) in dists.iter().enumerate() {
            orig_rank[i][j] = rank + 1; // 1-based rank
            if rank < k {
                orig_neighbours[i].push(j);
            }
        }
    }

    // Embedded k-NN and the penalty sum.
    let mut penalty = 0.0f64;
    let mut edists: Vec<(f32, usize)> = Vec::with_capacity(n - 1);
    for i in 0..n {
        edists.clear();
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = embedding[i].0 - embedding[j].0;
            let dy = embedding[i].1 - embedding[j].1;
            edists.push((dx * dx + dy * dy, j));
        }
        edists.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        for &(_, j) in edists.iter().take(k) {
            if !orig_neighbours[i].contains(&j) {
                penalty += (orig_rank[i][j] - k) as f64;
            }
        }
    }
    let norm = 2.0 / (n as f64 * k as f64 * (2.0 * n as f64 - 3.0 * k as f64 - 1.0));
    (1.0 - norm * penalty) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> (Vec<Vec<f32>>, Vec<(f32, f32)>) {
        // 2-D data embedded by the identity — perfectly trustworthy.
        let data: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 7) as f32, (i / 7) as f32])
            .collect();
        let emb: Vec<(f32, f32)> =
            data.iter().map(|p| (p[0], p[1])).collect();
        (data, emb)
    }

    #[test]
    fn identity_embedding_is_perfect() {
        let (data, emb) = grid_points(40);
        let t = trustworthiness(&data, &emb, 5);
        assert!(t > 0.999, "identity trustworthiness {t}");
    }

    #[test]
    fn scrambled_embedding_is_poor() {
        let (data, mut emb) = grid_points(40);
        // Scramble: reverse the embedding order relative to the data.
        emb.reverse();
        // Derange pairings further by a stride permutation.
        let scrambled: Vec<(f32, f32)> =
            (0..emb.len()).map(|i| emb[(i * 17) % emb.len()]).collect();
        let t_good = trustworthiness(&data, &{
            let (_, e) = grid_points(40);
            e
        }, 5);
        let t_bad = trustworthiness(&data, &scrambled, 5);
        assert!(
            t_bad < t_good - 0.1,
            "scrambled {t_bad} not worse than identity {t_good}"
        );
    }

    #[test]
    fn tsne_embedding_is_trustworthy_on_blobs() {
        let mut data = Vec::new();
        for i in 0..30 {
            let base = if i % 2 == 0 { 0.0 } else { 8.0 };
            data.push(vec![
                base + (i as f32 * 0.37) % 1.0,
                base + (i as f32 * 0.73) % 1.0,
                (i as f32 * 0.11) % 1.0,
            ]);
        }
        let emb = crate::tsne(
            &data,
            &crate::TsneConfig { n_iter: 250, ..Default::default() },
        );
        let t = trustworthiness(&data, &emb, 5);
        assert!(t > 0.7, "t-SNE trustworthiness {t}");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_k_rejected() {
        let (data, emb) = grid_points(10);
        let _ = trustworthiness(&data, &emb, 7);
    }
}
