//! Gaussian kernel density estimation — the "density" ingredient of the
//! paper's manifold analysis (dense regions of feasible examples, Fig. 3)
//! and the density weighting used by the FACE baseline.

use cfx_tensor::runtime;

/// A fitted Gaussian KDE over d-dimensional points.
#[derive(Debug, Clone)]
pub struct Kde {
    points: Vec<Vec<f32>>,
    bandwidth: f32,
    dim: usize,
    norm: f32,
}

impl Kde {
    /// Fits a KDE with a fixed bandwidth.
    ///
    /// # Panics
    /// Panics on empty/ragged data or non-positive bandwidth.
    pub fn fit(points: Vec<Vec<f32>>, bandwidth: f32) -> Kde {
        assert!(!points.is_empty(), "KDE needs at least one point");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "ragged points");
        // (2π)^{d/2} h^d normalization of the isotropic Gaussian kernel.
        let norm = (std::f32::consts::TAU).powf(dim as f32 / 2.0)
            * bandwidth.powi(dim as i32);
        Kde { points, bandwidth, dim, norm }
    }

    /// Fits with Scott's rule bandwidth `n^(-1/(d+4)) · σ̄`, where σ̄ is the
    /// mean per-dimension standard deviation.
    pub fn fit_scott(points: Vec<Vec<f32>>) -> Kde {
        assert!(!points.is_empty(), "KDE needs at least one point");
        let n = points.len() as f32;
        let dim = points[0].len();
        let mut sigma_sum = 0.0f32;
        for d in 0..dim {
            let mean: f32 = points.iter().map(|p| p[d]).sum::<f32>() / n;
            let var: f32 =
                points.iter().map(|p| (p[d] - mean).powi(2)).sum::<f32>() / n;
            sigma_sum += var.sqrt();
        }
        let sigma = (sigma_sum / dim as f32).max(1e-3);
        let bandwidth = sigma * n.powf(-1.0 / (dim as f32 + 4.0));
        Kde::fit(points, bandwidth.max(1e-3))
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the KDE has no support points (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f32 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn density(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.dim, "query dimensionality");
        let h2 = 2.0 * self.bandwidth * self.bandwidth;
        let mut total = 0.0f32;
        for p in &self.points {
            let d2: f32 =
                p.iter().zip(x).map(|(&a, &b)| (a - b) * (a - b)).sum();
            total += (-d2 / h2).exp();
        }
        total / (self.points.len() as f32 * self.norm)
    }

    /// Log-density (numerically safer for FACE's edge weights).
    pub fn log_density(&self, x: &[f32]) -> f32 {
        self.density(x).max(1e-30).ln()
    }

    /// Densities at many query points.
    ///
    /// Queries are independent, so they fan out across worker threads;
    /// the per-query kernel sum keeps its serial order, so results match
    /// the one-thread path bitwise.
    pub fn densities(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        runtime::parallel_map(xs.len(), 16, |i| self.density(&xs[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_peaks_at_the_data() {
        let pts = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1]];
        let kde = Kde::fit(pts, 0.5);
        assert!(kde.density(&[0.03, 0.03]) > kde.density(&[3.0, 3.0]));
    }

    #[test]
    fn density_integrates_to_one_1d() {
        // Riemann sum over a wide interval for a 1-D KDE.
        let pts = vec![vec![0.0], vec![1.0], vec![-1.0]];
        let kde = Kde::fit(pts, 0.4);
        let mut integral = 0.0f32;
        let step = 0.01f32;
        let mut x = -8.0f32;
        while x < 8.0 {
            integral += kde.density(&[x]) * step;
            x += step;
        }
        assert!((integral - 1.0).abs() < 0.02, "∫ = {integral}");
    }

    #[test]
    fn scott_bandwidth_scales_with_spread() {
        let tight: Vec<Vec<f32>> =
            (0..100).map(|i| vec![(i % 10) as f32 * 0.01]).collect();
        let wide: Vec<Vec<f32>> =
            (0..100).map(|i| vec![(i % 10) as f32 * 1.0]).collect();
        let k_tight = Kde::fit_scott(tight);
        let k_wide = Kde::fit_scott(wide);
        assert!(k_wide.bandwidth() > k_tight.bandwidth());
    }

    #[test]
    fn log_density_is_finite_far_away() {
        let kde = Kde::fit(vec![vec![0.0, 0.0]], 0.1);
        let ld = kde.log_density(&[100.0, 100.0]);
        assert!(ld.is_finite());
        assert!(ld < kde.log_density(&[0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Kde::fit(vec![vec![0.0]], 0.0);
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn dim_mismatch_rejected() {
        let kde = Kde::fit(vec![vec![0.0, 1.0]], 1.0);
        let _ = kde.density(&[0.0]);
    }
}
