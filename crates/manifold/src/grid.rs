//! Rendering and quantifying 2-D manifold views.
//!
//! The paper's Fig. 6 shows t-SNE scatter plots with feasible (yellow) and
//! infeasible (violet) counterfactuals and argues the regions are
//! separable. In a terminal we render the same view as an ASCII density
//! grid, and we quantify "separable regions" with a k-NN label-agreement
//! score: the probability that a point's nearest neighbours share its
//! label (0.5 ≈ fully mixed, 1.0 ≈ perfectly separated).

/// An ASCII rendering of labeled 2-D points.
///
/// Cells show `.` for empty, `o`/`O` for majority label-0 (infeasible),
/// `x`/`X` for majority label-1 (feasible); capitals mark dense cells.
pub fn ascii_scatter(
    points: &[(f32, f32)],
    labels: &[u8],
    width: usize,
    height: usize,
) -> String {
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    assert!(width >= 2 && height >= 2, "grid too small");
    if points.is_empty() {
        return String::new();
    }
    // Robust view bounds (2nd–98th percentile): a handful of t-SNE
    // outliers must not squash the bulk of the embedding into one cell.
    let (min_x, max_x) = robust_bounds(points.iter().map(|p| p.0));
    let (min_y, max_y) = robust_bounds(points.iter().map(|p| p.1));
    let span_x = (max_x - min_x).max(1e-6);
    let span_y = (max_y - min_y).max(1e-6);

    // counts[cell] = (label0, label1)
    let mut counts = vec![(0usize, 0usize); width * height];
    for (&(x, y), &l) in points.iter().zip(labels) {
        let fx = ((x - min_x) / span_x).clamp(0.0, 1.0);
        let fy = ((y - min_y) / span_y).clamp(0.0, 1.0);
        let cx = (fx * (width - 1) as f32).round() as usize;
        let cy = (fy * (height - 1) as f32).round() as usize;
        let cell = &mut counts[cy * width + cx];
        if l == 0 {
            cell.0 += 1;
        } else {
            cell.1 += 1;
        }
    }
    let dense = points.len().div_ceil(width * height).max(2);

    let mut out = String::with_capacity((width + 1) * height);
    for row in (0..height).rev() {
        for col in 0..width {
            let (n0, n1) = counts[row * width + col];
            let ch = match (n0, n1) {
                (0, 0) => '.',
                (a, b) if b >= a && a + b >= dense => 'X',
                (a, b) if b >= a => 'x',
                (a, b) if a + b >= dense => 'O',
                _ => 'o',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// k-NN label-agreement separability: for each point, the fraction of its
/// `k` nearest neighbours (in the 2-D embedding) sharing its label,
/// averaged over all points. Fully mixed labels give ≈ the majority-class
/// rate; well-separated regions approach 1.
pub fn knn_separability(points: &[(f32, f32)], labels: &[u8], k: usize) -> f32 {
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    let n = points.len();
    if n <= 1 || k == 0 {
        return 1.0;
    }
    let k = k.min(n - 1);
    let mut total = 0.0f32;
    let mut dists: Vec<(f32, usize)> = Vec::with_capacity(n - 1);
    for i in 0..n {
        dists.clear();
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            dists.push((dx * dx + dy * dy, j));
        }
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let same = dists[..k]
            .iter()
            .filter(|(_, j)| labels[*j] == labels[i])
            .count();
        total += same as f32 / k as f32;
    }
    total / n as f32
}

fn robust_bounds(values: impl Iterator<Item = f32>) -> (f32, f32) {
    let mut v: Vec<f32> = values.collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if v.is_empty() {
        return (0.0, 1.0);
    }
    let lo = v[(v.len() as f32 * 0.02) as usize];
    let hi = v[((v.len() as f32 * 0.98) as usize).min(v.len() - 1)];
    if hi > lo {
        (lo, hi)
    } else {
        (v[0], v[v.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separated() -> (Vec<(f32, f32)>, Vec<u8>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let jitter = (i as f32 * 0.1) % 1.0;
            pts.push((jitter, jitter * 0.5));
            labels.push(0);
            pts.push((10.0 + jitter, 10.0 + jitter * 0.5));
            labels.push(1);
        }
        (pts, labels)
    }

    fn mixed() -> (Vec<(f32, f32)>, Vec<u8>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let x = (i as f32 * 0.37) % 1.0;
            let y = (i as f32 * 0.71) % 1.0;
            pts.push((x, y));
            labels.push((i % 2) as u8);
        }
        (pts, labels)
    }

    #[test]
    fn separability_distinguishes_separated_from_mixed() {
        let (sp, sl) = separated();
        let (mp, ml) = mixed();
        let s_sep = knn_separability(&sp, &sl, 5);
        let s_mix = knn_separability(&mp, &ml, 5);
        assert!(s_sep > 0.95, "separated score {s_sep}");
        assert!(s_mix < 0.75, "mixed score {s_mix}");
    }

    #[test]
    fn ascii_grid_shape_and_symbols() {
        let (pts, labels) = separated();
        let art = ascii_scatter(&pts, &labels, 20, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 20));
        assert!(art.contains('x') || art.contains('X'));
        assert!(art.contains('o') || art.contains('O'));
        assert!(art.contains('.'));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(knn_separability(&[], &[], 3), 1.0);
        assert_eq!(knn_separability(&[(0.0, 0.0)], &[1], 3), 1.0);
        let art = ascii_scatter(&[(0.0, 0.0)], &[1], 4, 4);
        assert_eq!(art.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = knn_separability(&[(0.0, 0.0)], &[], 1);
    }
}
