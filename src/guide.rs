//! # Guide: from paper to working counterfactuals
//!
//! A long-form tour of the workspace for new users — how the pieces of
//! the paper map to crates, how to run your own data through the
//! framework, and how to extend it. (The quick version is the README;
//! the per-experiment evidence is EXPERIMENTS.md.)
//!
//! ## 1. The problem the paper solves
//!
//! A counterfactual explanation answers *"what should this person change
//! to get the other prediction?"*. Three properties make such an answer
//! usable (§I of the paper):
//!
//! * **feasibility** — the change must respect causal reality: age only
//!   grows; earning a doctorate takes years, so it also forces age up;
//!   you cannot change your race (immutable attributes);
//! * **sparsity** — people follow short lists; an answer that edits ten
//!   attributes is not advice;
//! * **density** — the suggested profile should look like real people of
//!   the desired class, not an outlier the classifier happens to accept.
//!
//! The paper's model is a conditional VAE (`cfx_models::Cvae`) trained
//! against a frozen classifier (`cfx_models::BlackBox`) with a four-part
//! loss (`cfx_core::cf_loss`): hinge validity + L1 proximity +
//! causal-constraint penalties + smooth-L0 sparsity.
//!
//! ## 2. The data model
//!
//! Everything tabular passes through `cfx_data`:
//!
//! * [`Schema`](cfx_data::Schema) declares features as numeric / binary /
//!   categorical (optionally ordinal), plus immutability flags;
//! * [`EncodedDataset`](cfx_data::EncodedDataset) is the fitted `[0, 1]`
//!   representation (min-max numerics, one-hot categoricals) with an
//!   invertible [`Encoding`](cfx_data::Encoding);
//! * the three benchmarks are *generated* by structural causal models
//!   whose equations embed exactly the relations the constraints test —
//!   see `cfx_data::{adult, kdd, law}` and the reusable SCM DSL in
//!   [`cfx_data::scm`].
//!
//! To use **your own data**: define a `Schema`, load rows with
//! [`cfx_data::csv::parse_raw`] (UCI-style `?` missing markers are
//! understood), and everything downstream works unchanged.
//!
//! ## 3. Constraints
//!
//! [`cfx_core::Constraint`] has two faces: an exact boolean check (used
//! by the feasibility metric) and a differentiable penalty on the
//! autodiff tape (used in training). The two templates of §III-A:
//!
//! * `Constraint::unary(schema, encoding, "age")` — the feature may not
//!   decrease (Eq. 1);
//! * `Constraint::binary(schema, encoding, "education", "age", c1, c2)` —
//!   raising the cause demands raising the effect (Eq. 2).
//!
//! Both return `Result<Constraint, CfxError>`: an unknown, binary, or
//! non-ordinal feature (or a negative `c2`) is a typed error naming the
//! offender, not a panic.
//!
//! Don't know your constraints? [`cfx_core::discover_binary_constraints`]
//! scans the data for floor-monotone, dominance-backed implication pairs
//! and estimates `c1`/`c2` — the paper's §V future work.
//!
//! ## 4. Training and explaining
//!
//! [`cfx_core::FeasibleCfModel`] ties it together; see the README's
//! quickstart. [`fit`](cfx_core::FeasibleCfModel::fit) trains under a
//! divergence watchdog (checkpoint, rollback, LR backoff — see
//! DESIGN.md, "Failure model & recovery") and returns a
//! [`TrainReport`](cfx_core::TrainReport) of its recovery events. Three
//! API layers sit on top of a trained model:
//!
//! * [`explain_batch`](cfx_core::FeasibleCfModel::explain_batch) — one
//!   counterfactual per instance with validity/feasibility verdicts;
//! * [`explain_diverse`](cfx_core::FeasibleCfModel::explain_diverse) — a
//!   max-min–dispersed set of k alternatives per instance (Figs. 2–3);
//! * [`latent_path`](cfx_core::FeasibleCfModel::latent_path) — the
//!   decoded interpolation from the instance toward its counterfactual,
//!   locating the gentlest valid intervention.
//!
//! ## 5. Evaluating
//!
//! `cfx_metrics` computes the paper's five §IV-D metrics plus the
//! stability extensions (robustness under perturbation, yNN
//! connectedness, manifold distance). `cfx_manifold` provides exact
//! t-SNE, PCA, KDE, separability and trustworthiness scores for the
//! Fig. 5/6 analyses. The `cfx-bench` crate regenerates every table and
//! figure (see EXPERIMENTS.md for the full command list).
//!
//! ## 6. Extending
//!
//! * **New dataset** — either write a generator with the SCM DSL
//!   (ground-truth causal edges for free) or load a CSV; nothing else
//!   changes.
//! * **New counterfactual method** — implement
//!   `cfx_baselines::CfMethod` (one `counterfactuals(&Tensor) -> Tensor`
//!   method) and it slots into the Table IV harness.
//! * **New constraint template** — add a variant to
//!   `cfx_core::Constraint` with a check and a tape penalty; the metric
//!   and training paths pick it up automatically.
//!
//! ## 7. Numerical substrate
//!
//! `cfx_tensor` is a deliberately small autodiff engine: 2-D `f32`
//! tensors, a fully enumerated op set (every backward rule covered by
//! finite-difference property tests), SGD/Adam, and a text format for
//! parameters. If you need an op, add it to the `Op` enum with its
//! backward rule and a gradient-check test — resist the temptation to
//! generalize beyond what the models need.
