//! `cfx` — command-line interface to the feasible-counterfactual toolkit.
//!
//! ```text
//! cfx run <adult|kdd|law> [--mode unary|binary] [--n N] [--seed S] [--explain K]
//!     end-to-end: generate data, train black box + CF model, print
//!     metrics and a Table-V style example
//! cfx discover <adult|kdd|law> [--n N] [--seed S]
//!     scan the dataset for causal-constraint candidates (§V future work)
//! cfx diverse <adult|kdd|law> [--k K] [--n N] [--seed S]
//!     print a diverse counterfactual set for one denied instance
//! cfx data <adult|kdd|law> [--n N] [--seed S]
//!     dump the generated benchmark as CSV to stdout
//! cfx serve <adult|kdd|law> [--addr A] [--workers W] [--cache-cap C]
//!           [--queue-cap Q] [--deadline-ms D] [--model-dir DIR]
//!           [--prom-out FILE] [--drift-warn PSI] [--n N] [--seed S]
//!     train a boot model and serve POST /explain, GET /healthz and
//!     GET /metrics until SIGTERM/SIGINT triggers a graceful drain.
//!     --workers (or CFX_SERVE_WORKERS) sizes the explain pool — jobs
//!     are sharded by row content, so responses are byte-identical at
//!     any worker count; --cache-cap (or CFX_SERVE_CACHE_CAP, 0 = off)
//!     bounds the response cache; --drift-warn sets the PSI threshold
//!     the live traffic drift monitor warns at (default 0.25).
//!     CFX_SERVE_FAULT=slow-client|malformed|kill@<n> arms deterministic
//!     chaos for drills.
//! ```

use cfx::core::{
    discover_binary_constraints, format_comparison, ConstraintMode,
    DiscoveryConfig, DiverseConfig, FeasibleCfConfig, FeasibleCfModel,
};
use cfx::data::{csv::raw_to_csv, DatasetId, EncodedDataset, Split};
use cfx::models::{BlackBox, BlackBoxConfig};
use std::process::ExitCode;

struct Args {
    dataset: DatasetId,
    mode: ConstraintMode,
    n: usize,
    seed: u64,
    explain: usize,
    k: usize,
    addr: String,
    workers: Option<usize>,
    cache_cap: Option<usize>,
    queue_cap: usize,
    deadline_ms: u64,
    model_dir: Option<String>,
    prom_out: Option<String>,
    drift_warn: Option<f64>,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        dataset: DatasetId::Adult,
        mode: ConstraintMode::Unary,
        n: 8_000,
        seed: 42,
        explain: 100,
        k: 4,
        addr: "127.0.0.1:7878".into(),
        workers: None,
        cache_cap: None,
        queue_cap: 64,
        deadline_ms: 2_000,
        model_dir: None,
        prom_out: None,
        drift_warn: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                out.mode = match args.get(i).map(String::as_str) {
                    Some("unary") => ConstraintMode::Unary,
                    Some("binary") => ConstraintMode::Binary,
                    other => return Err(format!("bad --mode {other:?}")),
                };
            }
            "--n" => {
                i += 1;
                out.n = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --n")?;
            }
            "--seed" => {
                i += 1;
                out.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --seed")?;
            }
            "--explain" => {
                i += 1;
                out.explain = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --explain")?;
            }
            "--k" => {
                i += 1;
                out.k =
                    args.get(i).and_then(|s| s.parse().ok()).ok_or("bad --k")?;
            }
            "--addr" => {
                i += 1;
                out.addr =
                    args.get(i).cloned().ok_or("bad --addr")?;
            }
            "--workers" => {
                i += 1;
                let w: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&w| w >= 1)
                    .ok_or("bad --workers (want an integer >= 1)")?;
                out.workers = Some(w);
            }
            "--cache-cap" => {
                i += 1;
                out.cache_cap = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad --cache-cap")?,
                );
            }
            "--queue-cap" => {
                i += 1;
                out.queue_cap = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --queue-cap")?;
            }
            "--deadline-ms" => {
                i += 1;
                out.deadline_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --deadline-ms")?;
            }
            "--model-dir" => {
                i += 1;
                out.model_dir =
                    Some(args.get(i).cloned().ok_or("bad --model-dir")?);
            }
            "--prom-out" => {
                i += 1;
                out.prom_out =
                    Some(args.get(i).cloned().ok_or("bad --prom-out")?);
            }
            "--drift-warn" => {
                i += 1;
                out.drift_warn = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|w: &f64| w.is_finite() && *w > 0.0)
                        .ok_or("bad --drift-warn (want a PSI > 0)")?,
                );
            }
            name => {
                out.dataset = DatasetId::parse(name)
                    .ok_or_else(|| format!("unknown dataset {name:?}"))?;
            }
        }
        i += 1;
    }
    Ok(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprintln!("usage: cfx <run|discover|diverse|data|serve> <dataset> [flags]");
        return ExitCode::from(2);
    };
    let args = match parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // CFX_TRACE=<path> makes any cfx invocation emit a JSONL trace.
    if let Err(e) = cfx_obs::init_from_env() {
        eprintln!("error: CFX_TRACE: {e}");
        return ExitCode::from(2);
    }
    match command {
        "run" => cmd_run(&args),
        "discover" => cmd_discover(&args),
        "diverse" => cmd_diverse(&args),
        "data" => cmd_data(&args),
        "serve" => {
            if let Err(e) = cmd_serve(&args) {
                eprintln!("error: {e}");
                return ExitCode::from(1);
            }
        }
        other => {
            eprintln!("unknown command {other:?}");
            return ExitCode::from(2);
        }
    }
    cfx_obs::close_jsonl();
    ExitCode::SUCCESS
}

/// Shared setup: generate, encode, split, train black box + CF model.
fn setup(args: &Args) -> (EncodedDataset, Split, FeasibleCfModel) {
    cfx_obs::info!(
        "generating_dataset",
        dataset = args.dataset.name(),
        raw_rows = args.n,
        seed = args.seed,
    );
    let raw = args.dataset.generate(args.n, args.seed);
    let data = EncodedDataset::from_raw(&raw);
    let split = Split::paper(data.len(), args.seed);
    let (x_train, y_train) = data.subset(&split.train);

    cfx_obs::info!("training_black_box");
    let bb_cfg = BlackBoxConfig { seed: args.seed, ..Default::default() };
    let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
    blackbox.train(&x_train, &y_train, &bb_cfg);

    cfx_obs::info!("training_cf_model", mode = args.mode.label());
    let config = FeasibleCfConfig::paper(args.dataset, args.mode)
        .with_seed(args.seed)
        .with_step_budget_of(args.dataset, x_train.rows());
    let constraints = FeasibleCfModel::paper_constraints(
        args.dataset,
        &data,
        args.mode,
        config.c1,
        config.c2,
    ).unwrap();
    let mut model = FeasibleCfModel::new(&data, blackbox, constraints, config);
    model.fit(&x_train);
    (data, split, model)
}

fn denied(data: &EncodedDataset, split: &Split, model: &FeasibleCfModel, cap: usize) -> cfx::tensor::Tensor {
    let x = data.x.gather_rows(&split.test);
    let preds = model.blackbox().predict(&x);
    let idx: Vec<usize> =
        (0..x.rows()).filter(|&r| preds[r] == 0).take(cap).collect();
    x.gather_rows(&idx)
}

fn cmd_run(args: &Args) {
    let (data, split, model) = setup(args);
    let x = denied(&data, &split, &model, args.explain);
    let batch = model.explain_batch(&x);
    println!(
        "explained {} denied instances: validity {:.1}%, feasibility {:.1}%",
        batch.examples.len(),
        100.0 * batch.validity_rate(),
        100.0 * batch.feasibility_rate()
    );
    if let Some(e) = batch.examples.iter().find(|e| e.valid && e.feasible) {
        println!("\nexample (changes marked *):");
        print!("{}", format_comparison(&data.schema, &data.encoding, e));
    }
}

fn cmd_discover(args: &Args) {
    let raw = args.dataset.generate(args.n, args.seed);
    let data = EncodedDataset::from_raw(&raw);
    let found = discover_binary_constraints(&data, &DiscoveryConfig::default());
    println!(
        "{:<18} {:<18} {:>7} {:>10} {:>9}",
        "cause", "effect", "score", "floor-mono", "dominance"
    );
    for c in found.iter().take(10) {
        println!(
            "{:<18} {:<18} {:>7.3} {:>10.2} {:>9.3}",
            c.cause, c.effect, c.score, c.floor_monotonicity, c.dominance
        );
    }
    if found.is_empty() {
        println!("(no candidates — dataset too small?)");
    }
}

fn cmd_diverse(args: &Args) {
    let (data, split, model) = setup(args);
    let x = denied(&data, &split, &model, 1);
    if x.rows() == 0 {
        println!("no denied instance found");
        return;
    }
    let set = model.explain_diverse(
        &x,
        &DiverseConfig { k: args.k, seed: args.seed, ..Default::default() },
    );
    println!(
        "{} diverse counterfactuals (pool kept {}, diversity {:.3}):\n",
        set.selected.len(),
        set.pool_after_filter,
        set.diversity
    );
    for (i, e) in set.selected.iter().enumerate() {
        println!(
            "--- counterfactual {} (valid {}, feasible {}) ---",
            i + 1,
            e.valid,
            e.feasible
        );
        print!("{}", format_comparison(&data.schema, &data.encoding, e));
        println!();
    }
}

fn cmd_data(args: &Args) {
    let raw = args.dataset.generate(args.n, args.seed);
    print!("{}", raw_to_csv(&raw));
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use cfx::core::{ExplainConfig, GenRecoveryConfig};
    use cfx::serve::{self, Servable, ServeConfig};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let (data, _split, model) = setup(args);
    let boot = Servable {
        model,
        data,
        explain: ExplainConfig::default(),
        recovery: GenRecoveryConfig::default(),
        version: 0,
        source: "boot".into(),
    };
    // Default::default() reads CFX_SERVE_WORKERS / CFX_SERVE_CACHE_CAP;
    // explicit flags win over the environment.
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        addr: args.addr.clone(),
        workers: args.workers.unwrap_or(defaults.workers),
        cache_cap: args.cache_cap.unwrap_or(defaults.cache_cap),
        queue_cap: args.queue_cap,
        default_deadline_ms: args.deadline_ms,
        model_dir: args.model_dir.clone().map(Into::into),
        prom_out: args.prom_out.clone().map(Into::into),
        drift_warn: args.drift_warn.unwrap_or(defaults.drift_warn),
        ..defaults
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    serve::install_signal_handlers(&shutdown);
    let handle =
        serve::spawn(cfg, boot, shutdown).map_err(|e| e.to_string())?;
    // Load scripts parse this line to learn the bound port (port 0
    // resolves to a free one), so print and flush it before blocking.
    println!("cfx-serve listening on http://{}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = handle.join();
    println!(
        "cfx-serve drained: accepted={} served={} shed={} timeouts={} malformed={}",
        report.accepted,
        report.served,
        report.shed,
        report.timeouts,
        report.malformed
    );
    print!("{}", serve::report_serve(&report));
    Ok(())
}
