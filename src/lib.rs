//! # cfx — Feasible Counterfactual Exploration
//!
//! A Rust reproduction of *"A Framework for Feasible Counterfactual
//! Exploration incorporating Causality, Sparsity and Density"* (ICDE
//! 2024). This facade crate re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`tensor`] — dense tensors + reverse-mode autodiff (`cfx-tensor`)
//! * [`data`] — the three synthetic benchmarks + preprocessing (`cfx-data`)
//! * [`models`] — black-box classifier + conditional VAE (`cfx-models`)
//! * [`core`] — the feasible-CF generator, constraints, losses (`cfx-core`)
//! * [`baselines`] — Mahajan, REVISE, C-CHVAE, CEM, DiCE, FACE (`cfx-baselines`)
//! * [`manifold`] — t-SNE, PCA, KDE for the density analysis (`cfx-manifold`)
//! * [`metrics`] — the §IV-D evaluation metrics (`cfx-metrics`)
//! * [`serve`] — fault-tolerant amortized serving daemon (`cfx-serve`)
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough and the
//! [`guide`] module for a long-form tour.

pub mod guide;

pub use cfx_baselines as baselines;
pub use cfx_core as core;
pub use cfx_data as data;
pub use cfx_manifold as manifold;
pub use cfx_metrics as metrics;
pub use cfx_models as models;
pub use cfx_serve as serve;
pub use cfx_tensor as tensor;
