//! Quickstart: train the black box and the feasible-counterfactual model
//! on the Adult benchmark, then explain a handful of test instances.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cfx::core::{format_comparison, ConstraintMode, FeasibleCfConfig, FeasibleCfModel};
use cfx::data::{DatasetId, EncodedDataset, Split};
use cfx::models::{BlackBox, BlackBoxConfig};

fn main() {
    // 1. Generate and preprocess the benchmark (synthetic Adult with the
    //    paper's schema; see cfx-data docs for the substitution rationale).
    let raw = DatasetId::Adult.generate(8_000, 42);
    let data = EncodedDataset::from_raw(&raw);
    let split = Split::paper(data.len(), 42);
    let (x_train, y_train) = data.subset(&split.train);
    println!(
        "Adult: {} raw rows -> {} cleaned, encoded width {}",
        8_000,
        data.len(),
        data.width()
    );

    // 2. Train and freeze the black-box classifier (two linear layers).
    let bb_cfg = BlackBoxConfig::default();
    let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
    blackbox.train(&x_train, &y_train, &bb_cfg);
    let (x_val, y_val) = data.subset(&split.val);
    println!(
        "black box validation accuracy: {:.1}%",
        100.0 * blackbox.accuracy(&x_val, &y_val)
    );

    // 3. Train the unary-constraint counterfactual generator (age↑).
    let config = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Unary)
        .with_step_budget_of(DatasetId::Adult, x_train.rows());
    let constraints = FeasibleCfModel::paper_constraints(
        DatasetId::Adult,
        &data,
        ConstraintMode::Unary,
        config.c1,
        config.c2,
    ).unwrap();
    let mut model = FeasibleCfModel::new(&data, blackbox, constraints, config);
    let report = model.fit(&x_train);
    match (report.first_total(), report.last_total()) {
        (Some(first), Some(last)) => println!(
            "trained {} epochs ({} watchdog retries); loss {first:.2} -> {last:.2}",
            report.history.len(),
            report.retries,
        ),
        // A persistent fault (e.g. a poisoned black box) exhausts the
        // watchdog before any epoch completes — an orderly stop at the
        // initial snapshot, not a panic.
        _ => println!(
            "training stopped with no completed epoch ({:?}, {} retries)",
            report.status, report.retries
        ),
    }

    // 4. Explain low-income test instances: how do they reach >50k?
    let x_test = data.x.gather_rows(&split.test);
    let preds = model.blackbox().predict(&x_test);
    let low_income: Vec<usize> =
        (0..x_test.rows()).filter(|&r| preds[r] == 0).take(100).collect();
    let x = x_test.gather_rows(&low_income);
    let batch = model.explain_batch(&x);
    println!(
        "\nexplained {} instances: validity {:.1}%, feasibility {:.1}%",
        batch.examples.len(),
        100.0 * batch.validity_rate(),
        100.0 * batch.feasibility_rate()
    );

    // 5. Show the first valid + feasible explanation, Table-V style.
    if let Some(example) =
        batch.examples.iter().find(|e| e.valid && e.feasible)
    {
        println!("\na successful counterfactual (changes marked *):\n");
        print!("{}", format_comparison(&data.schema, &data.encoding, example));
    }
}
