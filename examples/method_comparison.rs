//! Side-by-side comparison of all nine counterfactual methods on a small
//! Adult sample — a miniature of the paper's Table IV that runs in
//! seconds and prints the same metric columns.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use cfx::baselines::{fit_all_baselines, BaselineContext};
use cfx::core::{feasibility_rate, ConstraintMode, FeasibleCfConfig, FeasibleCfModel};
use cfx::data::{DatasetId, EncodedDataset, Split};
use cfx::metrics::{
    categorical_proximity, continuous_proximity, sparsity, validity_pct,
    format_table, MetricContext, TableRow,
};
use cfx::models::{BlackBox, BlackBoxConfig};
use cfx::tensor::Tensor;

fn main() {
    let dataset = DatasetId::Adult;
    let raw = dataset.generate(6_000, 11);
    let data = EncodedDataset::from_raw(&raw);
    let split = Split::paper(data.len(), 11);
    let (x_train, y_train) = data.subset(&split.train);

    let bb_cfg = BlackBoxConfig::default();
    let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
    blackbox.train(&x_train, &y_train, &bb_cfg);

    // Evaluate on denied (negative-class) test instances.
    let x_test = data.x.gather_rows(&split.test);
    let preds = blackbox.predict(&x_test);
    let denied: Vec<usize> =
        (0..x_test.rows()).filter(|&r| preds[r] == 0).take(100).collect();
    let x = x_test.gather_rows(&denied);
    eprintln!("explaining {} denied applicants …", x.rows());

    let metrics = MetricContext::new(&data);
    let cfg = FeasibleCfConfig::paper(dataset, ConstraintMode::Unary);
    let unary = FeasibleCfModel::paper_constraints(
        dataset, &data, ConstraintMode::Unary, cfg.c1, cfg.c2,
    ).unwrap();
    let binary = FeasibleCfModel::paper_constraints(
        dataset, &data, ConstraintMode::Binary, cfg.c1, cfg.c2,
    ).unwrap();

    let evaluate = |name: &str, cf: &Tensor| -> TableRow {
        let desired: Vec<u8> =
            blackbox.predict(&x).iter().map(|&p| 1 - p).collect();
        let cf_pred = blackbox.predict(cf);
        let xr: Vec<Vec<f32>> =
            (0..x.rows()).map(|r| x.row_slice(r).to_vec()).collect();
        let cr: Vec<Vec<f32>> =
            (0..cf.rows()).map(|r| cf.row_slice(r).to_vec()).collect();
        TableRow {
            method: name.to_string(),
            validity: validity_pct(&desired, &cf_pred),
            feasibility_unary: Some(100.0 * feasibility_rate(&unary, &x, cf)),
            feasibility_binary: Some(100.0 * feasibility_rate(&binary, &x, cf)),
            continuous_proximity: continuous_proximity(&metrics, &xr, &cr),
            categorical_proximity: categorical_proximity(&metrics, &xr, &cr),
            sparsity: sparsity(&metrics, &xr, &cr),
            recovery: None,
        }
    };

    let mut rows = Vec::new();
    let ctx = BaselineContext::new(&data, x_train.clone(), &blackbox, 11);
    for method in fit_all_baselines(&ctx, dataset) {
        eprintln!("running {} …", method.name());
        rows.push(evaluate(&method.name(), &method.counterfactuals(&x)));
    }

    for mode in [ConstraintMode::Unary, ConstraintMode::Binary] {
        eprintln!("training our {} model …", mode.label());
        let config = FeasibleCfConfig::paper(dataset, mode)
            .with_step_budget_of(dataset, x_train.rows());
        let constraints = FeasibleCfModel::paper_constraints(
            dataset, &data, mode, config.c1, config.c2,
        ).unwrap();
        let mut model =
            FeasibleCfModel::new(&data, blackbox.clone(), constraints, config);
        model.fit(&x_train);
        let label = match mode {
            ConstraintMode::Unary => "Our method (a) unary",
            ConstraintMode::Binary => "Our method (b) binary",
        };
        rows.push(evaluate(label, &model.counterfactuals(&x)));
    }

    println!("\n{}", format_table("method comparison (mini Table IV, Adult)", &rows));
}
