//! Latent-manifold exploration (the paper's Figs. 3, 5 and 6): embed the
//! VAE latent space of the Law School benchmark into 2-D with t-SNE,
//! render an ASCII scatter of feasible vs. infeasible counterfactuals,
//! and report how separable the two regions are.
//!
//! ```text
//! cargo run --release --example manifold_explorer
//! ```

use cfx::core::{ConstraintMode, FeasibleCfConfig, FeasibleCfModel};
use cfx::data::{DatasetId, EncodedDataset, Split};
use cfx::manifold::{ascii_scatter, knn_separability, tsne, Kde, TsneConfig};
use cfx::models::{BlackBox, BlackBoxConfig};

fn main() {
    let raw = DatasetId::LawSchool.generate(6_000, 5);
    let data = EncodedDataset::from_raw(&raw);
    let split = Split::paper(data.len(), 5);
    let (x_train, y_train) = data.subset(&split.train);

    let bb_cfg = BlackBoxConfig::default();
    let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
    blackbox.train(&x_train, &y_train, &bb_cfg);

    let config =
        FeasibleCfConfig::paper(DatasetId::LawSchool, ConstraintMode::Unary)
            .with_step_budget_of(DatasetId::LawSchool, x_train.rows());
    let constraints = FeasibleCfModel::paper_constraints(
        DatasetId::LawSchool,
        &data,
        ConstraintMode::Unary,
        config.c1,
        config.c2,
    ).unwrap();
    let mut model = FeasibleCfModel::new(&data, blackbox, constraints, config);
    model.fit(&x_train);

    // Latent codes + feasibility labels for a slice of the test split.
    let take = 400.min(split.test.len());
    let x = data.x.gather_rows(&split.test[..take]);
    let (latents, labels) = model.manifold_points(&x);
    let rows: Vec<Vec<f32>> =
        (0..latents.rows()).map(|r| latents.row_slice(r).to_vec()).collect();

    eprintln!("running exact t-SNE on {} latent points …", rows.len());
    let emb = tsne(&rows, &TsneConfig { n_iter: 350, ..Default::default() });

    let feasible = labels.iter().filter(|&&l| l == 1).count();
    println!(
        "latent manifold of {} counterfactuals ({} feasible, {} infeasible)",
        labels.len(),
        feasible,
        labels.len() - feasible
    );
    println!("x/X = feasible, o/O = infeasible, capitals = dense cells\n");
    print!("{}", ascii_scatter(&emb, &labels, 76, 26));

    let sep = knn_separability(&emb, &labels, 10);
    println!("\nk-NN(10) separability of the two regions: {sep:.3}");
    println!("(0.5 ≈ fully mixed; 1.0 ≈ the clean separation Fig. 6 shows)");

    // Density view (Fig. 3): are feasible CFs in denser latent regions?
    let kde = Kde::fit_scott(rows.clone());
    let (mut df, mut di) = (Vec::new(), Vec::new());
    for (row, &l) in rows.iter().zip(&labels) {
        if l == 1 {
            df.push(kde.density(row));
        } else {
            di.push(kde.density(row));
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    println!(
        "mean latent density: feasible {:.3e} vs infeasible {:.3e}",
        mean(&df),
        mean(&di)
    );
}
