//! The paper's motivating loan scenario (Figs. 1–3): an individual is
//! denied (predicted low income); we sample *several* counterfactual
//! candidates from the VAE's latent space, then rank them the way the
//! paper argues a user should — prefer feasible ones, among those prefer
//! the sparsest (Fig. 2), and among those prefer the ones lying in dense
//! regions of the latent manifold rather than outliers (Fig. 3).
//!
//! ```text
//! cargo run --release --example loan_scenario
//! ```

use cfx::core::{ConstraintMode, FeasibleCfConfig, FeasibleCfModel};
use cfx::data::{csv::format_value, DatasetId, EncodedDataset, Split};
use cfx::manifold::Kde;
use cfx::models::{BlackBox, BlackBoxConfig};
use cfx::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of latent samples drawn for the one applicant.
const CANDIDATES: usize = 24;

fn main() {
    let raw = DatasetId::Adult.generate(8_000, 7);
    let data = EncodedDataset::from_raw(&raw);
    let split = Split::paper(data.len(), 7);
    let (x_train, y_train) = data.subset(&split.train);

    let bb_cfg = BlackBoxConfig::default();
    let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
    blackbox.train(&x_train, &y_train, &bb_cfg);

    let config =
        FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Binary)
            .with_step_budget_of(DatasetId::Adult, x_train.rows());
    let constraints = FeasibleCfModel::paper_constraints(
        DatasetId::Adult,
        &data,
        ConstraintMode::Binary,
        config.c1,
        config.c2,
    ).unwrap();
    let mut model = FeasibleCfModel::new(&data, blackbox, constraints, config);
    model.fit(&x_train);

    // Pick one denied applicant from the test split.
    let x_test = data.x.gather_rows(&split.test);
    let preds = model.blackbox().predict(&x_test);
    let denied = (0..x_test.rows())
        .find(|&r| preds[r] == 0)
        .expect("no denied applicant in the test split");
    let x = x_test.slice_rows(denied, 1);

    println!("the denied applicant:");
    let decoded = data.encoding.decode_row(&data.schema, x.row_slice(0));
    for (f, v) in data.schema.features.iter().zip(&decoded) {
        println!("  {:<16} {}", f.name, format_value(&f.kind, v));
    }

    // Density model over the latent space of the training data (Fig. 3's
    // "dense batch of feasible examples").
    let latents = model.latent_mu(&x_train.slice_rows(0, 2_000.min(x_train.rows())));
    let latent_rows: Vec<Vec<f32>> =
        (0..latents.rows()).map(|r| latents.row_slice(r).to_vec()).collect();
    let kde = Kde::fit_scott(latent_rows);

    // Sample candidate counterfactuals by perturbing the latent code.
    let mut rng = StdRng::seed_from_u64(1);
    let mut candidates: Vec<Candidate> = Vec::new();
    for i in 0..CANDIDATES {
        let noise = if i == 0 { 0.0 } else { 1.0 }; // first = posterior mean
        let cf = model.counterfactuals_with_noise(&x, noise, &mut rng);
        let valid = model.blackbox().predict(&cf)[0] == 1;
        let feasible = model
            .constraints()
            .iter()
            .all(|c| c.check(x.row_slice(0), cf.row_slice(0)));
        let changes = count_changes(&data, &x, &cf);
        let z = model.latent_mu(&cf);
        let density = kde.density(z.row_slice(0));
        candidates.push(Candidate { cf, valid, feasible, changes, density });
    }

    // Rank: feasible+valid first, then fewest changes, then densest.
    candidates.sort_by(|a, b| {
        (b.valid && b.feasible)
            .cmp(&(a.valid && a.feasible))
            .then(a.changes.cmp(&b.changes))
            .then(b.density.partial_cmp(&a.density).unwrap_or(std::cmp::Ordering::Equal))
    });

    println!("\ncandidate counterfactuals (best first):");
    println!(
        "{:>3} {:>6} {:>9} {:>8} {:>12}",
        "#", "valid", "feasible", "changes", "latent dens."
    );
    for (i, c) in candidates.iter().enumerate().take(10) {
        println!(
            "{:>3} {:>6} {:>9} {:>8} {:>12.3e}",
            i + 1,
            c.valid,
            c.feasible,
            c.changes,
            c.density
        );
    }

    let best = &candidates[0];
    println!("\nrecommended path to approval (changed attributes only):");
    let cf_decoded =
        data.encoding.decode_row(&data.schema, best.cf.row_slice(0));
    for ((f, before), after) in
        data.schema.features.iter().zip(&decoded).zip(&cf_decoded)
    {
        let b = format_value(&f.kind, before);
        let a = format_value(&f.kind, after);
        if changed_enough(&b, &a) {
            println!("  {:<16} {b} -> {a}", f.name);
        }
    }
}

struct Candidate {
    cf: Tensor,
    valid: bool,
    feasible: bool,
    changes: usize,
    density: f32,
}

/// Feature-level change count (the sparsity the user experiences).
fn count_changes(data: &EncodedDataset, x: &Tensor, cf: &Tensor) -> usize {
    let a = data.encoding.decode_row(&data.schema, x.row_slice(0));
    let b = data.encoding.decode_row(&data.schema, cf.row_slice(0));
    data.schema
        .features
        .iter()
        .zip(a.iter().zip(&b))
        .filter(|(f, (va, vb))| {
            changed_enough(
                &format_value(&f.kind, va),
                &format_value(&f.kind, vb),
            )
        })
        .count()
}

fn changed_enough(before: &str, after: &str) -> bool {
    match (before.parse::<f32>(), after.parse::<f32>()) {
        (Ok(x), Ok(y)) => (x - y).abs() >= 1.0,
        _ => before != after,
    }
}
