//! Latent-path exploration: walk the straight latent line from a denied
//! applicant toward their counterfactual, decoding every step — where
//! does the classifier flip, and where do the causal constraints hold?
//! (The algorithmic form of the paper's Fig. 3 "walk toward the dense
//! feasible region".)
//!
//! ```text
//! cargo run --release --example recourse_path
//! ```

use cfx::core::{ConstraintMode, FeasibleCfConfig, FeasibleCfModel};
use cfx::data::{csv::format_value, DatasetId, EncodedDataset, Split};
use cfx::models::{BlackBox, BlackBoxConfig};

fn main() {
    let raw = DatasetId::Adult.generate(8_000, 31);
    let data = EncodedDataset::from_raw(&raw);
    let split = Split::paper(data.len(), 31);
    let (x_train, y_train) = data.subset(&split.train);

    let bb_cfg = BlackBoxConfig::default();
    let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
    blackbox.train(&x_train, &y_train, &bb_cfg);

    let config = FeasibleCfConfig::paper(DatasetId::Adult, ConstraintMode::Binary)
        .with_step_budget_of(DatasetId::Adult, x_train.rows());
    let constraints = FeasibleCfModel::paper_constraints(
        DatasetId::Adult,
        &data,
        ConstraintMode::Binary,
        config.c1,
        config.c2,
    ).unwrap();
    let mut model = FeasibleCfModel::new(&data, blackbox, constraints, config);
    model.fit(&x_train);

    // A denied applicant.
    let x_test = data.x.gather_rows(&split.test);
    let preds = model.blackbox().predict(&x_test);
    let denied = (0..x_test.rows())
        .find(|&r| preds[r] == 0)
        .expect("no denied applicant");
    let x = x_test.slice_rows(denied, 1);

    let path = model.latent_path(&x, 10);
    println!(
        "latent path from class {} toward class {} in {} steps:\n",
        path.input_class,
        path.desired_class,
        path.steps.len() - 1
    );
    let age_idx = data.schema.index_of("age");
    let edu_idx = data.schema.index_of("education");
    println!(
        "{:>6} {:>6} {:>9} {:>10} {:>14}",
        "alpha", "class", "feasible", "age", "education"
    );
    for step in &path.steps {
        let decoded = data.encoding.decode_row(&data.schema, &step.point);
        println!(
            "{:>6.2} {:>6} {:>9} {:>10} {:>14}",
            step.alpha,
            step.class,
            step.feasible,
            format_value(&data.schema.features[age_idx].kind, &decoded[age_idx]),
            format_value(&data.schema.features[edu_idx].kind, &decoded[edu_idx]),
        );
    }

    match path.first_valid_feasible() {
        Some(step) => println!(
            "\ngentlest valid+feasible intervention at alpha = {:.2} — the \
             recommendation needs only {:.0}% of the full counterfactual move",
            step.alpha,
            100.0 * step.alpha
        ),
        None => println!(
            "\nno intermediate step is valid+feasible; the full counterfactual \
             (alpha = 1) is the recommendation"
        ),
    }
    println!(
        "feasible fraction along the path: {:.0}%",
        100.0 * path.feasible_fraction()
    );
}
