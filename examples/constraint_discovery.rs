//! Automatic causal-constraint discovery — the paper's §V future work:
//! scan a dataset for implication structure (`cause↑ ⇒ effect↑`), rank the
//! candidates, and train the counterfactual model on a *discovered*
//! constraint instead of a hand-written one.
//!
//! ```text
//! cargo run --release --example constraint_discovery
//! ```

use cfx::core::{
    discover_binary_constraints, ConstraintMode, DiscoveryConfig,
    FeasibleCfConfig, FeasibleCfModel,
};
use cfx::data::{DatasetId, EncodedDataset, Split};
use cfx::models::{BlackBox, BlackBoxConfig};

fn main() {
    for dataset in [DatasetId::Adult, DatasetId::LawSchool] {
        let raw = dataset.generate(8_000, 23);
        let data = EncodedDataset::from_raw(&raw);
        println!("\n=== {} ===", dataset.name());

        let found =
            discover_binary_constraints(&data, &DiscoveryConfig::default());
        println!(
            "{:<16} {:<16} {:>7} {:>10} {:>9} {:>8} {:>8}",
            "cause", "effect", "score", "floor-mono", "dominance", "c1", "c2"
        );
        for c in found.iter().take(6) {
            println!(
                "{:<16} {:<16} {:>7.3} {:>10.2} {:>9.3} {:>8.3} {:>8.3}",
                c.cause,
                c.effect,
                c.score,
                c.floor_monotonicity,
                c.dominance,
                c.c1,
                c.c2
            );
        }
        let Some(top) = found.first() else {
            println!("no candidate constraints discovered");
            continue;
        };
        let (paper_cause, paper_effect) = dataset.binary_constraint_features();
        println!(
            "paper's hand-written constraint: {paper_cause}↑ ⇒ {paper_effect}↑ — \
             discovered rank: {}",
            found
                .iter()
                .position(|c| c.cause == paper_cause && c.effect == paper_effect)
                .map(|r| (r + 1).to_string())
                .unwrap_or_else(|| "not found".into())
        );

        // Train on the top discovered constraint end-to-end.
        let split = Split::paper(data.len(), 23);
        let (x_train, y_train) = data.subset(&split.train);
        let bb_cfg = BlackBoxConfig::default();
        let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
        blackbox.train(&x_train, &y_train, &bb_cfg);

        let config = FeasibleCfConfig::paper(dataset, ConstraintMode::Binary)
            .with_step_budget_of(dataset, x_train.rows());
        let constraint = top.to_constraint(&data);
        println!("training with discovered constraint: {}", constraint.label());
        let mut model = FeasibleCfModel::new(
            &data,
            blackbox,
            vec![constraint],
            config,
        );
        model.fit(&x_train);

        let x_test = data.x.gather_rows(&split.test);
        let preds = model.blackbox().predict(&x_test);
        let denied: Vec<usize> =
            (0..x_test.rows()).filter(|&r| preds[r] == 0).take(100).collect();
        let batch = model.explain_batch(&x_test.gather_rows(&denied));
        println!(
            "explanations under the discovered constraint: validity {:.1}%, \
             feasibility {:.1}%",
            100.0 * batch.validity_rate(),
            100.0 * batch.feasibility_rate()
        );
    }
}
