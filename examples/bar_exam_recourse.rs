//! Law School recourse with the binary causal constraint `tier↑ ⇒ lsat↑`:
//! for students predicted to fail the bar, generate counterfactuals and
//! verify that whenever the suggestion moves them to a more selective
//! school tier, it also demands a higher LSAT — the causal coupling the
//! generator was trained to respect (§III-A).
//!
//! ```text
//! cargo run --release --example bar_exam_recourse
//! ```

use cfx::core::{ConstraintMode, FeasibleCfConfig, FeasibleCfModel, FeatureView};
use cfx::data::{DatasetId, EncodedDataset, Split, Value};
use cfx::models::{BlackBox, BlackBoxConfig};

fn main() {
    let raw = DatasetId::LawSchool.generate(8_000, 3);
    let data = EncodedDataset::from_raw(&raw);
    let split = Split::paper(data.len(), 3);
    let (x_train, y_train) = data.subset(&split.train);

    let bb_cfg = BlackBoxConfig::default();
    let mut blackbox = BlackBox::new(data.width(), &bb_cfg);
    blackbox.train(&x_train, &y_train, &bb_cfg);

    let config =
        FeasibleCfConfig::paper(DatasetId::LawSchool, ConstraintMode::Binary)
            .with_step_budget_of(DatasetId::LawSchool, x_train.rows());
    let constraints = FeasibleCfModel::paper_constraints(
        DatasetId::LawSchool,
        &data,
        ConstraintMode::Binary,
        config.c1,
        config.c2,
    ).unwrap();
    let mut model = FeasibleCfModel::new(&data, blackbox, constraints, config);
    model.fit(&x_train);

    // Students predicted to fail.
    let x_test = data.x.gather_rows(&split.test);
    let preds = model.blackbox().predict(&x_test);
    let failing: Vec<usize> =
        (0..x_test.rows()).filter(|&r| preds[r] == 0).take(50).collect();
    if failing.is_empty() {
        println!("no failing students in this test split — rerun with another seed");
        return;
    }
    let x = x_test.gather_rows(&failing);
    let batch = model.explain_batch(&x);

    println!(
        "{} failing students explained: validity {:.1}%, feasibility {:.1}%\n",
        batch.examples.len(),
        100.0 * batch.validity_rate(),
        100.0 * batch.feasibility_rate()
    );

    // Inspect the tier⇒lsat coupling on the decoded values.
    let tier_view = FeatureView::resolve(&data.schema, &data.encoding, "tier")
        .expect("tier is a schema feature");
    let lsat_view = FeatureView::resolve(&data.schema, &data.encoding, "lsat")
        .expect("lsat is a schema feature");

    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10}  verdict",
        "#", "tier", "tier_cf", "lsat", "lsat_cf"
    );
    let mut coupled = 0;
    let mut tier_moves = 0;
    for (i, e) in batch.examples.iter().enumerate().take(15) {
        let (tier, tier_cf) =
            raw_pair(&data, &e.input, &e.cf, "tier");
        let (lsat, lsat_cf) = raw_pair(&data, &e.input, &e.cf, "lsat");
        let verdict = if e.valid && e.feasible {
            "valid+feasible"
        } else if e.valid {
            "valid only"
        } else {
            "invalid"
        };
        println!(
            "{:>4} {:>10.1} {:>10.1} {:>10.1} {:>10.1}  {verdict}",
            i + 1,
            tier,
            tier_cf,
            lsat,
            lsat_cf
        );
    }
    for e in &batch.examples {
        let dt = tier_view.value(&e.cf) - tier_view.value(&e.input);
        let dl = lsat_view.value(&e.cf) - lsat_view.value(&e.input);
        if dt > 1e-4 {
            tier_moves += 1;
            if dl > 1e-4 {
                coupled += 1;
            }
        }
    }
    println!(
        "\ntier increased in {tier_moves} suggestions; lsat increased \
         alongside in {coupled} of them (the binary causal constraint)"
    );
}

/// Decoded raw numeric (before, after) for one feature.
fn raw_pair(
    data: &EncodedDataset,
    x: &[f32],
    cf: &[f32],
    feature: &str,
) -> (f32, f32) {
    let idx = data.schema.index_of(feature);
    let a = data.encoding.decode_row(&data.schema, x)[idx];
    let b = data.encoding.decode_row(&data.schema, cf)[idx];
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => (x, y),
        other => panic!("{feature} is not numeric: {other:?}"),
    }
}
